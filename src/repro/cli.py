"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``      print Table-I statistics for one or more dataset presets
``train``      train one model on a preset and report its metrics
``compare``    run several models under the identical protocol (mini Table II)
``experiment`` regenerate one paper artifact (table1..4, fig4..10)
``generate``   write a synthetic dataset to disk (.npz or text directory)
``serve-bench`` run the sweep-8 serving A/B (exact vs IVF vs LSH retrieval)
``parallel-bench`` run the sweep-9 multi-process training sweep
``locality-bench`` run the sweep-10 reorder × blocked-spmm locality sweep
``compile-bench`` run the sweep-11 eager vs step-compiled training steps
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.data import PRESETS, render_statistics_table, save_dataset
from repro.experiments import (
    ExperimentContext,
    default_train_config,
    run_convergence_comparison,
    run_efficiency_comparison,
    run_embedding_visualization,
    run_all_sweeps,
    run_memory_attention_study,
    run_model,
    run_module_ablation,
    run_overall_comparison,
    run_relation_ablation,
    run_sparsity_experiment,
)
from repro.experiments.ablation import render_relation_ablation_by_n
from repro.models import available_models


def _add_training_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="ciao-small", choices=sorted(PRESETS))
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--lr", type=float, default=0.01)
    parser.add_argument("--l2", type=float, default=1e-4)
    parser.add_argument("--embed-dim", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--patience", type=int, default=8)


def _config_from(args) -> "TrainConfig":
    return default_train_config(epochs=args.epochs, batch_size=args.batch_size,
                                learning_rate=args.lr, l2=args.l2,
                                patience=args.patience, seed=args.seed)


def _cmd_stats(args) -> int:
    datasets = [PRESETS[name](seed=args.seed) for name in args.presets]
    print(render_statistics_table(datasets))
    return 0


def _cmd_train(args) -> int:
    context = ExperimentContext.build(args.dataset, seed=args.seed)
    run = run_model(args.model, context, _config_from(args),
                    embed_dim=args.embed_dim, seed=args.seed)
    print(f"{args.model} on {args.dataset}:")
    for name, value in sorted(run.metrics.items()):
        print(f"  {name:10s} {value:.4f}")
    print(f"  parameters: {run.num_parameters}")
    return 0


def _cmd_compare(args) -> int:
    results = run_overall_comparison(
        datasets=(args.dataset,), models=args.models,
        train_config=_config_from(args), embed_dim=args.embed_dim,
        seed=args.seed, verbose=True)
    print()
    print(results.render_table2())
    print(results.render_table3())
    return 0


def _cmd_experiment(args) -> int:
    context = ExperimentContext.build(args.dataset, seed=args.seed)
    config = _config_from(args)
    artifact = args.artifact
    if artifact == "table1":
        print(render_statistics_table([context.dataset]))
    elif artifact in ("table2", "table3"):
        results = run_overall_comparison(datasets=(args.dataset,),
                                         train_config=config, seed=args.seed)
        print(results.render_table2() if artifact == "table2"
              else results.render_table3())
    elif artifact == "table4":
        print(run_efficiency_comparison(context).render())
    elif artifact == "fig4":
        print(run_module_ablation(context, train_config=config).render())
    elif artifact == "fig5":
        print(render_relation_ablation_by_n(
            run_relation_ablation(context, train_config=config)))
    elif artifact == "fig6":
        print(run_sparsity_experiment(context, train_config=config).render())
    elif artifact == "fig7":
        for sweep in run_all_sweeps(context, train_config=config):
            print(sweep.render())
            print()
    elif artifact == "fig8":
        print(run_convergence_comparison(context).render())
    elif artifact == "fig9":
        print(run_embedding_visualization(context, train_config=config).render())
    elif artifact == "fig10":
        print(run_memory_attention_study(context, train_config=config).render())
    else:  # pragma: no cover - argparse restricts choices
        raise KeyError(artifact)
    return 0


def _cmd_generate(args) -> int:
    dataset = PRESETS[args.preset](seed=args.seed)
    save_dataset(dataset, args.output)
    print(f"wrote {dataset} to {args.output}")
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.engine import use_dtype
    from repro.experiments.engine_bench import (
        EngineBenchResults,
        merge_serving_section,
        run_serving_bench,
    )

    with use_dtype(args.dtype):
        section = run_serving_bench(
            preset=args.preset, k=args.k, block_size=args.block_size,
            num_queries=args.num_queries, train_epochs=args.train_epochs,
            nprobe=args.nprobe, num_cells=args.num_cells,
            num_bits=args.num_bits, seed=args.seed)
    rendered = EngineBenchResults(dataset_name=args.preset, epochs=0)
    rendered.serving = section
    lines = rendered.render().splitlines()
    start = next(i for i, line in enumerate(lines)
                 if line.startswith("serving"))
    print("\n".join(lines[start:]))
    if args.output:
        merge_serving_section(args.output, args.preset, section)
        print(f"merged serving section into {args.output}")
    return 0


def _cmd_parallel_bench(args) -> int:
    from repro.experiments.engine_bench import (
        EngineBenchResults,
        merge_preset_section,
        run_parallel_bench,
    )

    section = run_parallel_bench(
        preset=args.preset, epochs=args.epochs,
        batches_per_epoch=args.batches_per_epoch,
        batch_size=args.batch_size, embed_dim=args.embed_dim,
        fanout=args.fanout, modes=tuple(args.modes),
        worker_counts=tuple(args.workers), seed=args.seed, dtype=args.dtype)
    rendered = EngineBenchResults(dataset_name=args.preset, epochs=args.epochs)
    rendered.parallel = section
    lines = rendered.render().splitlines()
    start = next(i for i, line in enumerate(lines)
                 if line.startswith("parallel"))
    print("\n".join(lines[start:]))
    if args.output:
        merge_preset_section(args.output, args.preset, "parallel", section)
        print(f"merged parallel section into {args.output}")
    return 0


def _cmd_locality_bench(args) -> int:
    from repro.engine import use_dtype
    from repro.experiments.engine_bench import (
        EngineBenchResults,
        merge_preset_section,
        run_locality_bench,
    )

    with use_dtype(args.dtype):
        section = run_locality_bench(
            preset=args.preset, embed_dim=args.embed_dim,
            num_layers=args.num_layers, strategies=tuple(args.strategies),
            repeats=args.repeats, epochs=args.epochs,
            batches_per_epoch=args.batches_per_epoch,
            batch_size=args.batch_size, num_queries=args.num_queries,
            seed=args.seed,
            timing_only=args.timing_only if args.timing_only else None)
    rendered = EngineBenchResults(dataset_name=args.preset, epochs=args.epochs)
    rendered.locality = section
    lines = rendered.render().splitlines()
    start = next(i for i, line in enumerate(lines)
                 if line.startswith("locality"))
    print("\n".join(lines[start:]))
    if args.output:
        merge_preset_section(args.output, args.preset, "locality", section)
        print(f"merged locality section into {args.output}")
    return 0


def _cmd_compile_bench(args) -> int:
    from repro.engine import use_dtype
    from repro.experiments.engine_bench import (
        _COMPILE_TUNED,
        EngineBenchResults,
        merge_preset_section,
        run_compile_bench,
    )

    # Start from the per-preset tuned knobs (the dims the committed
    # artifact was recorded with) and let explicit flags override them.
    kwargs = dict(_COMPILE_TUNED.get(args.preset, {}))
    if args.model is not None:
        kwargs["model_name"] = args.model
    if args.embed_dim is not None:
        kwargs["embed_dim"] = args.embed_dim
    if args.batch_size is not None:
        kwargs["batch_size"] = args.batch_size
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    if args.steps_per_round is not None:
        kwargs["steps_per_round"] = args.steps_per_round
    if args.memory_units is not None:
        kwargs["model_kwargs"] = dict(kwargs.get("model_kwargs", {}),
                                      num_memory_units=args.memory_units)
    with use_dtype(args.dtype):
        section = run_compile_bench(
            preset=args.preset, num_layers=args.num_layers,
            seed=args.seed, **kwargs)
    rendered = EngineBenchResults(dataset_name=args.preset, epochs=0)
    rendered.compile = section
    lines = rendered.render().splitlines()
    start = next(i for i, line in enumerate(lines)
                 if line.startswith("compile"))
    print("\n".join(lines[start:]))
    if args.output:
        merge_preset_section(args.output, args.preset, "compile", section)
        print(f"merged compile section into {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DGNN (ICDE 2023) reproduction toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="Table-I dataset statistics")
    stats.add_argument("presets", nargs="*",
                       default=["ciao-small", "epinions-small", "yelp-small"])
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)

    train = commands.add_parser("train", help="train one model")
    train.add_argument("model", choices=available_models())
    _add_training_flags(train)
    train.set_defaults(func=_cmd_train)

    compare = commands.add_parser("compare", help="compare several models")
    compare.add_argument("models", nargs="+")
    _add_training_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    experiment = commands.add_parser("experiment",
                                     help="regenerate a paper artifact")
    experiment.add_argument("artifact",
                            choices=["table1", "table2", "table3", "table4",
                                     "fig4", "fig5", "fig6", "fig7", "fig8",
                                     "fig9", "fig10"])
    _add_training_flags(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    generate = commands.add_parser("generate", help="write a dataset to disk")
    generate.add_argument("preset", choices=sorted(PRESETS))
    generate.add_argument("output")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    serve = commands.add_parser(
        "serve-bench",
        help="sweep-8 serving A/B: exact vs IVF vs LSH retrieval")
    serve.add_argument("--preset", default="medium", choices=sorted(PRESETS))
    serve.add_argument("--k", type=int, default=20)
    serve.add_argument("--block-size", type=int, default=512)
    serve.add_argument("--num-queries", type=int, default=4096)
    serve.add_argument("--train-epochs", type=int, default=0,
                       help="briefly train before snapshotting (ANN recall "
                            "needs trained cluster structure)")
    serve.add_argument("--nprobe", type=int, default=8)
    serve.add_argument("--num-cells", type=int, default=None,
                       help="IVF cells (default ~sqrt(num_items))")
    serve.add_argument("--num-bits", type=int, default=7)
    serve.add_argument("--dtype", default="float32",
                       choices=["float32", "float64"])
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--output", default=None,
                       help="BENCH_engine.json to merge the section into")
    serve.set_defaults(func=_cmd_serve_bench)

    par = commands.add_parser(
        "parallel-bench",
        help="sweep-9 multi-process training: epoch rate and fleet PSS "
             "vs worker count")
    par.add_argument("--preset", default="medium", choices=sorted(PRESETS))
    par.add_argument("--epochs", type=int, default=2)
    par.add_argument("--batches-per-epoch", type=int, default=4)
    par.add_argument("--batch-size", type=int, default=512)
    par.add_argument("--embed-dim", type=int, default=32)
    par.add_argument("--fanout", type=int, default=10)
    par.add_argument("--modes", nargs="+", default=["hogwild", "sync"],
                     choices=["hogwild", "sync"])
    par.add_argument("--workers", type=int, nargs="+", default=[1, 2],
                     help="worker counts to ladder through (0 = the "
                          "single-process reference, always run)")
    par.add_argument("--dtype", default="float32",
                     choices=["float32", "float64"])
    par.add_argument("--seed", type=int, default=0)
    par.add_argument("--output", default=None,
                     help="BENCH_engine.json to merge the section into")
    par.set_defaults(func=_cmd_parallel_bench)

    loc = commands.add_parser(
        "locality-bench",
        help="sweep-10 cache-locality pass: node reordering × blocked spmm")
    loc.add_argument("--preset", default="medium", choices=sorted(PRESETS))
    loc.add_argument("--embed-dim", type=int, default=64)
    loc.add_argument("--num-layers", type=int, default=2)
    loc.add_argument("--strategies", nargs="+",
                     default=["identity", "degree", "rcm"],
                     choices=["identity", "degree", "rcm"])
    loc.add_argument("--repeats", type=int, default=7)
    loc.add_argument("--epochs", type=int, default=2)
    loc.add_argument("--batches-per-epoch", type=int, default=2)
    loc.add_argument("--batch-size", type=int, default=1024)
    loc.add_argument("--num-queries", type=int, default=2048)
    loc.add_argument("--timing-only", action="store_true",
                     help="skip the epoch and serving legs (forced on at "
                          "xlarge)")
    loc.add_argument("--dtype", default="float32",
                     choices=["float32", "float64"])
    loc.add_argument("--seed", type=int, default=0)
    loc.add_argument("--output", default=None,
                     help="BENCH_engine.json to merge the section into")
    loc.set_defaults(func=_cmd_locality_bench)

    comp = commands.add_parser(
        "compile-bench",
        help="sweep-11 step compiler: eager vs tape-replay training steps")
    comp.add_argument("--preset", default="medium", choices=sorted(PRESETS))
    comp.add_argument("--model", default=None, choices=available_models(),
                      help="override the preset's tuned model "
                           "(default: the tuned choice, else dgnn)")
    comp.add_argument("--embed-dim", type=int, default=None,
                      help="override the preset's tuned embedding width")
    comp.add_argument("--num-layers", type=int, default=2)
    comp.add_argument("--memory-units", type=int, default=None,
                      help="override the preset's tuned dgnn memory units")
    comp.add_argument("--batch-size", type=int, default=None)
    comp.add_argument("--steps-per-round", type=int, default=None)
    comp.add_argument("--repeats", type=int, default=None)
    comp.add_argument("--dtype", default="float32",
                      choices=["float32", "float64"])
    comp.add_argument("--seed", type=int, default=0)
    comp.add_argument("--output", default=None,
                      help="BENCH_engine.json to merge the section into")
    comp.set_defaults(func=_cmd_compile_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
