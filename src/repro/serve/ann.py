"""Approximate nearest-neighbour retrieval over the item embeddings.

Exact serving scores every item per user — an ``(b, num_items)`` GEMM.
Past ~10k items the matmul dominates request latency, so this module
provides two classic sublinear alternatives, both pure numpy:

* **IVF** (inverted file): k-means partitions the items into
  ``num_cells ≈ sqrt(n)`` Voronoi cells; a query scores only the items
  inside its ``nprobe`` nearest cells.  Recall tracks how well the
  embedding geometry clusters — trained social-recommendation
  embeddings cluster by community, which is exactly what IVF exploits.
* **LSH** (random-hyperplane): items hash to ``num_bits``-bit sign
  codes; a query probes its own bucket plus the buckets reached by
  flipping the bits whose hyperplane margins are smallest (multiprobe),
  which recovers most of the recall lost to unlucky sign flips near a
  hyperplane.

Both reduce to the same serving-side structure, :class:`CoarseIndex`:
items grouped by cell into one C-contiguous embedding matrix (so a
probe scores a *contiguous slice* — full BLAS efficiency, no gather
per query) plus a CSR-style ``indptr``.  Cells partition the items, so
candidates from distinct probed cells never collide and need no
dedup.

Determinism: both builders are pure functions of the embeddings and
their ``seed`` (k-means init and hyperplane draws come from a local
``default_rng``), so rebuilding an index on the same snapshot yields
identical cells and identical served results.  Tuning knobs —
``num_cells``/``nprobe`` for IVF (recall rises with ``nprobe``, cost
with candidate volume ≈ ``nprobe/num_cells``), ``num_bits``/``nprobe``
for LSH — are exposed through ``RecommendService`` and the sweep-8 CLI
(``python -m repro serve-bench``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.engine.precision import index_dtype_for
from repro.eval.metrics import top_k_indices


@dataclass
class CoarseIndex:
    """Items partitioned into cells, served as contiguous slices.

    ``grouped_ids[indptr[c]:indptr[c+1]]`` are the original item ids of
    cell ``c`` and ``grouped_emb[indptr[c]:indptr[c+1]]`` their
    embeddings, stored C-contiguous in cell order.

    ``kind`` is ``"ivf"`` (with ``centroids``) or ``"lsh"`` (with
    ``planes``; cells are the *occupied* hash buckets and
    ``bucket_codes[c]`` the code of cell ``c``).
    """

    kind: str
    grouped_ids: np.ndarray
    grouped_emb: np.ndarray
    indptr: np.ndarray
    centroids: Optional[np.ndarray] = None
    planes: Optional[np.ndarray] = None
    bucket_codes: Optional[np.ndarray] = None

    @property
    def num_cells(self) -> int:
        return int(len(self.indptr) - 1)

    @property
    def num_items(self) -> int:
        return int(self.grouped_ids.size)

    def cell_sizes(self) -> np.ndarray:
        return np.diff(self.indptr)

    def probe(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Cell ids to search per query, ``(len(queries), nprobe)``.

        IVF ranks cells by centroid inner product (the same similarity
        the scorer uses).  LSH probes the query's own bucket first,
        then the buckets reached by flipping the lowest-margin bits;
        probed codes that correspond to *empty* buckets map to ``-1``
        and are skipped by the scorer.
        """
        queries = np.asarray(queries)
        if queries.ndim == 1:
            queries = queries[None, :]
        nprobe = min(int(nprobe), self.num_cells)
        if self.kind == "ivf":
            affinity = queries @ self.centroids.T
            return top_k_indices(affinity, nprobe)
        if self.kind == "lsh":
            return self._probe_lsh(queries, nprobe)
        raise ValueError(f"unknown index kind {self.kind!r}")

    def _probe_lsh(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        projections = queries @ self.planes.T          # (q, num_bits)
        base_codes = _pack_codes(projections >= 0.0)
        num_bits = self.planes.shape[0]
        # Flip order: ascending |margin| — the bits most likely wrong.
        flip_order = np.argsort(np.abs(projections), axis=1,
                                kind="stable")
        codes = np.empty((len(queries), nprobe), dtype=np.int64)
        codes[:, 0] = base_codes
        for j in range(1, nprobe):
            codes[:, j] = base_codes ^ (1 << flip_order[:, (j - 1) % num_bits])
        # Map probed codes to occupied-bucket cell ids (-1 when empty).
        cell_of_code = np.searchsorted(self.bucket_codes, codes)
        cell_of_code = np.clip(cell_of_code, 0, len(self.bucket_codes) - 1)
        hit = self.bucket_codes[cell_of_code] == codes
        return np.where(hit, cell_of_code, -1)


def _pack_codes(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n, num_bits)`` boolean sign matrix into int64 codes."""
    weights = (1 << np.arange(bits.shape[1], dtype=np.int64))
    return bits.astype(np.int64) @ weights


def _group_by_cell(item_emb: np.ndarray,
                   assign: np.ndarray,
                   num_cells: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort items by cell; return (grouped_ids, grouped_emb, indptr)."""
    order = np.argsort(assign, kind="stable")
    grouped_ids = order.astype(index_dtype_for(item_emb.shape[0]))
    grouped_emb = np.ascontiguousarray(item_emb[order])
    counts = np.bincount(assign, minlength=num_cells)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return grouped_ids, grouped_emb, indptr


def _kmeans(item_emb: np.ndarray, num_cells: int, iters: int,
            rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means (Euclidean) with empty-cell reseeding.

    Runs in the embeddings' own dtype.  Distance uses the expanded
    ``|x|^2 - 2 x·c + |c|^2`` form so each iteration is one GEMM.
    """
    n = item_emb.shape[0]
    centroids = item_emb[rng.choice(n, size=num_cells, replace=False)].copy()
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        # |x|^2 is constant per item — argmin doesn't need it.
        dist = (-2.0 * (item_emb @ centroids.T)
                + (centroids * centroids).sum(axis=1)[None, :])
        assign = dist.argmin(axis=1)
        counts = np.bincount(assign, minlength=num_cells)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, item_emb)
        occupied = counts > 0
        centroids[occupied] = (sums[occupied]
                               / counts[occupied, None].astype(item_emb.dtype))
        empty = np.flatnonzero(~occupied)
        if empty.size:
            # Reseed empty cells from the items farthest from their
            # centroid, splitting the most spread-out cells.
            spread = dist[np.arange(n), assign]
            centroids[empty] = item_emb[np.argsort(-spread)[:empty.size]]
    return centroids, assign


def build_ivf_index(item_emb: np.ndarray, num_cells: Optional[int] = None,
                    iters: int = 10, seed: int = 0) -> CoarseIndex:
    """K-means inverted-file index over the item embeddings.

    ``num_cells`` defaults to ``≈ sqrt(num_items)`` — the standard IVF
    balance point where probing ``nprobe`` cells scores
    ``≈ nprobe * sqrt(n)`` candidates.
    """
    item_emb = np.ascontiguousarray(item_emb)
    n = item_emb.shape[0]
    if num_cells is None:
        num_cells = max(1, int(round(np.sqrt(n))))
    num_cells = min(int(num_cells), n)
    rng = np.random.default_rng(seed)
    centroids, assign = _kmeans(item_emb, num_cells, iters, rng)
    grouped_ids, grouped_emb, indptr = _group_by_cell(item_emb, assign,
                                                      num_cells)
    return CoarseIndex(kind="ivf", grouped_ids=grouped_ids,
                       grouped_emb=grouped_emb, indptr=indptr,
                       centroids=centroids)


def build_lsh_index(item_emb: np.ndarray, num_bits: int = 10,
                    seed: int = 0) -> CoarseIndex:
    """Random-hyperplane LSH index over the item embeddings.

    ``num_bits`` hyperplanes give up to ``2**num_bits`` buckets; only
    occupied buckets are materialized as cells, with ``bucket_codes``
    kept sorted so probe codes resolve by binary search.
    """
    item_emb = np.ascontiguousarray(item_emb)
    if num_bits >= 63:
        raise ValueError("num_bits must fit in an int64 code")
    rng = np.random.default_rng(seed)
    planes = rng.standard_normal((num_bits, item_emb.shape[1]))
    planes = (planes / np.linalg.norm(planes, axis=1, keepdims=True)).astype(
        item_emb.dtype)
    codes = _pack_codes((item_emb @ planes.T) >= 0.0)
    bucket_codes, assign = np.unique(codes, return_inverse=True)
    grouped_ids, grouped_emb, indptr = _group_by_cell(
        item_emb, assign, num_cells=len(bucket_codes))
    return CoarseIndex(kind="lsh", grouped_ids=grouped_ids,
                       grouped_emb=grouped_emb, indptr=indptr,
                       planes=planes, bucket_codes=bucket_codes)
