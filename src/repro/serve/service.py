"""Batched recommendation serving over an :class:`EmbeddingSnapshot`.

:class:`RecommendService` is the request-path counterpart of
:func:`repro.eval.full_ranking.full_ranking_topk`: the same score
blocks, train-item masking and :func:`top_k_indices` selection, wired
for online use —

* requests are coalesced into ``block_size``-user score blocks whose
  buffers come from the engine arena (open an
  ``arena.step_scope()`` around a burst of calls to recycle them);
* ``retrieval="ivf"`` / ``"lsh"`` swap the full ``(b, num_items)``
  GEMM for per-cell GEMMs over the probed cells of a
  :class:`repro.serve.ann.CoarseIndex` — sublinear in the catalogue
  size, with an automatic exact fallback for any user whose probed
  cells yield fewer than ``k`` unmasked candidates;
* users with social edges but no train interactions are auto-detected
  from the snapshot CSRs and routed through the cold-start path
  (:func:`repro.models.coldstart.embed_cold_user` when the live model
  is attached, a snapshot-only social-mean approximation otherwise);
* :meth:`RecommendService.swap` atomically replaces the snapshot (and
  rebuilds the index) under a lock while in-flight requests keep
  serving the version they started with.

In ``"exact"`` mode the results are *bitwise identical* to
``full_ranking_topk`` on the live model for the same ``block_size`` —
the snapshot stores the embeddings uncast, the mask content is the
same CSR, and ties break identically.  The ANN modes are deterministic
given the index's build seed but trade that exactness for sublinear
cost (recall against exact is measured and gated in sweep 8).  Knobs:
``retrieval``, ``block_size``, and the index parameters forwarded to
:mod:`repro.serve.ann`; buffer pooling follows the engine arena policy
(``REPRO_ENGINE_ARENA*`` — see ``docs/operations.md``).
"""

from __future__ import annotations

import threading
from typing import Dict, NamedTuple, Optional, Sequence

import numpy as np

from repro.engine import arena
from repro.engine.ragged import gather_ragged_rows
from repro.eval.metrics import top_k_indices
from repro.serve.ann import CoarseIndex, build_ivf_index, build_lsh_index
from repro.serve.snapshot import EmbeddingSnapshot

RETRIEVAL_MODES = ("exact", "ivf", "lsh")


def cold_user_embedding(snapshot: EmbeddingSnapshot,
                        friend_ids: Sequence[int]) -> np.ndarray:
    """Snapshot-only cold-user vector: the friends' final-embedding mean.

    The model-attached path (:func:`repro.models.coldstart.embed_cold_user`)
    re-runs the trained propagation operators and is exact; this
    fallback needs nothing but the snapshot.  When the snapshot was
    taken from a τ-recalibrated model the friends' final embeddings
    already include their own τ (which doubles their pre-τ state), so
    the mean is scaled by 1.5 to approximate ``state + τ/2`` — a
    zeroth-order stand-in for the real recalibration.
    """
    friend_ids = np.asarray(list(friend_ids), dtype=np.int64)
    if friend_ids.size == 0:
        raise ValueError("cold-start user needs at least one social tie")
    if friend_ids.min() < 0 or friend_ids.max() >= snapshot.num_users:
        raise ValueError("friend id out of range")
    vector = np.asarray(snapshot.user_emb[friend_ids]).mean(axis=0)
    if snapshot.meta.get("tau"):
        vector = vector * np.asarray(1.5, dtype=vector.dtype)
    return vector.astype(snapshot.user_emb.dtype, copy=False)


def topk_recall(approx: np.ndarray, exact: np.ndarray) -> float:
    """Mean fraction of each exact top-k recovered by the approx top-k."""
    approx = np.asarray(approx, dtype=np.int64)
    exact = np.asarray(exact, dtype=np.int64)
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch: {approx.shape} vs {exact.shape}")
    if exact.size == 0:
        return 1.0
    # Offset each row into a disjoint key range so one global
    # searchsorted answers every row's membership test.
    span = int(max(approx.max(), exact.max())) + 1
    offsets = np.arange(exact.shape[0], dtype=np.int64)[:, None] * span
    exact_keys = np.sort(exact + offsets, axis=1).ravel()
    approx_keys = (approx + offsets).ravel()
    pos = np.clip(np.searchsorted(exact_keys, approx_keys), 0,
                  exact_keys.size - 1)
    hits = (exact_keys[pos] == approx_keys) & (approx.ravel() >= 0)
    return float(hits.sum() / exact.size)


class _ServingState(NamedTuple):
    """Everything one request reads, swapped as a unit."""

    snapshot: EmbeddingSnapshot
    index: Optional[CoarseIndex]
    train_keys: np.ndarray          # sorted user*num_items+item pair keys


class RecommendService:
    """Batched top-k recommendations from a published snapshot.

    Parameters
    ----------
    snapshot:
        The :class:`EmbeddingSnapshot` to serve (typically
        ``store.load_latest()``).
    retrieval:
        ``"exact"`` (score every item), ``"ivf"`` or ``"lsh"``.
    block_size:
        Users scored per block; bounds the score-buffer memory and is
        the coalescing unit for batched requests.
    nprobe:
        Cells probed per user in ANN modes.
    num_cells / num_bits:
        Index-build knobs forwarded to :func:`build_ivf_index` /
        :func:`build_lsh_index` (``num_cells=None`` → ``≈ sqrt(n)``).
    mask_train:
        Exclude each user's train items from results (standard).
    model:
        Optional live model for the exact cold-start path
        (:func:`repro.models.coldstart.embed_cold_user`); without it
        cold users fall back to :func:`cold_user_embedding`.
    cold_dispatch:
        Auto-route users with social ties but no train interactions
        through the cold path.  Disable to score everyone against the
        snapshot's user embeddings regardless.
    """

    def __init__(self, snapshot: EmbeddingSnapshot, retrieval: str = "exact",
                 block_size: int = 256, nprobe: int = 8,
                 num_cells: Optional[int] = None, num_bits: int = 10,
                 mask_train: bool = True, model=None,
                 cold_dispatch: bool = True, seed: int = 0):
        if retrieval not in RETRIEVAL_MODES:
            raise ValueError(f"retrieval must be one of {RETRIEVAL_MODES}, "
                             f"got {retrieval!r}")
        self.retrieval = retrieval
        self.block_size = int(block_size)
        self.nprobe = int(nprobe)
        self.num_cells = num_cells
        self.num_bits = int(num_bits)
        self.mask_train = bool(mask_train)
        self.model = model
        self.cold_dispatch = bool(cold_dispatch)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {"requests": 0, "users": 0,
                                      "cold_users": 0, "fallback_rows": 0,
                                      "swaps": 0}
        self._state = self._build_state(snapshot)

    # -- lifecycle -----------------------------------------------------
    @property
    def snapshot(self) -> EmbeddingSnapshot:
        return self._state.snapshot

    @property
    def index(self) -> Optional[CoarseIndex]:
        return self._state.index

    def _build_state(self, snapshot: EmbeddingSnapshot) -> _ServingState:
        item_emb = np.asarray(snapshot.item_emb)
        if self.retrieval == "ivf":
            index = build_ivf_index(item_emb, num_cells=self.num_cells,
                                    seed=self.seed)
        elif self.retrieval == "lsh":
            index = build_lsh_index(item_emb, num_bits=self.num_bits,
                                    seed=self.seed)
        else:
            index = None
        # Global (user, item) pair keys of the train CSR.  Rows ascend
        # and indices are sorted within each row, so the keys come out
        # globally sorted — searchsorted membership, no extra sort.
        counts = np.diff(snapshot.train_indptr).astype(np.int64)
        owners = np.repeat(np.arange(snapshot.num_users, dtype=np.int64),
                           counts)
        train_keys = (owners * snapshot.num_items
                      + snapshot.train_indices.astype(np.int64))
        return _ServingState(snapshot=snapshot, index=index,
                             train_keys=train_keys)

    def swap(self, snapshot: EmbeddingSnapshot) -> None:
        """Atomically switch to ``snapshot`` (rebuilds the ANN index).

        In-flight ``recommend`` calls finish on the state they captured
        at entry; calls that start after ``swap`` returns see only the
        new snapshot.
        """
        state = self._build_state(snapshot)
        with self._lock:
            self._state = state
            self.stats["swaps"] += 1

    def refresh(self, store) -> bool:
        """Swap to ``store.load_latest()`` if it is a newer version."""
        latest = store.latest_version()
        if latest is None or latest == self._state.snapshot.version:
            return False
        self.swap(store.load(latest))
        return True

    # -- request path --------------------------------------------------
    def recommend(self, user_ids: Sequence[int], k: int = 10) -> np.ndarray:
        """Top-``k`` item ids per user, ``(len(user_ids), k)``, best first.

        Warm users are scored in ``block_size`` blocks through the
        configured retrieval mode; cold users (social ties, no train
        interactions) are embedded via the cold path and exact-scored.
        """
        state = self._state
        snapshot = state.snapshot
        user_ids = np.asarray(user_ids, dtype=np.int64)
        if user_ids.ndim != 1:
            raise ValueError("user_ids must be 1-D")
        if user_ids.size and (user_ids.min() < 0
                              or user_ids.max() >= snapshot.num_users):
            raise ValueError("user id out of range")
        k = min(int(k), snapshot.num_items)
        if k <= 0:
            raise ValueError("k must be positive")
        results = np.empty((len(user_ids), k), dtype=np.int64)
        if len(user_ids) == 0:
            return results
        self.stats["requests"] += 1
        self.stats["users"] += len(user_ids)

        if self.cold_dispatch:
            cold = snapshot.cold_user_mask(user_ids)
        else:
            cold = np.zeros(len(user_ids), dtype=bool)
        warm_pos = np.flatnonzero(~cold)
        cold_pos = np.flatnonzero(cold)

        for start in range(0, len(warm_pos), self.block_size):
            block_pos = warm_pos[start:start + self.block_size]
            block_users = user_ids[block_pos]
            if state.index is None:
                block_top = self._recommend_exact(state, block_users, k)
            else:
                block_top = self._recommend_ann(state, block_users, k)
            results[block_pos] = block_top
        if cold_pos.size:
            self.stats["cold_users"] += int(cold_pos.size)
            results[cold_pos] = self._recommend_cold(state,
                                                     user_ids[cold_pos], k)
        return results

    def recommend_cold_user(self, friend_ids: Sequence[int],
                            k: int = 10) -> np.ndarray:
        """Top-``k`` for a brand-new user known only through friends.

        With the live model attached this matches
        :func:`repro.models.coldstart.recommend_cold_user` bitwise
        (same embedding, same items, same tie-breaking); without it
        the snapshot-only social-mean vector is used.
        """
        state = self._state
        vector = self._cold_vector(state, friend_ids)
        scores = np.asarray(state.snapshot.item_emb) @ vector
        k = min(int(k), state.snapshot.num_items)
        return top_k_indices(scores, k)

    # -- scoring paths -------------------------------------------------
    def _recommend_exact(self, state: _ServingState, block_users: np.ndarray,
                         k: int, mask_override: Optional[bool] = None
                         ) -> np.ndarray:
        snapshot = state.snapshot
        scores = arena.empty((len(block_users), snapshot.num_items),
                             snapshot.user_emb.dtype)
        np.matmul(snapshot.user_emb[block_users], snapshot.item_emb.T,
                  out=scores)
        mask = self.mask_train if mask_override is None else mask_override
        if mask:
            gathered = gather_ragged_rows(snapshot.train_indptr, block_users)
            scores[gathered.owners(),
                   snapshot.train_indices[gathered.positions]] = -np.inf
        top = top_k_indices(scores, k)
        arena.release(scores)
        return top

    def _recommend_ann(self, state: _ServingState, block_users: np.ndarray,
                       k: int) -> np.ndarray:
        snapshot, index = state.snapshot, state.index
        b = len(block_users)
        user_block = np.ascontiguousarray(snapshot.user_emb[block_users])
        probes = index.probe(user_block, self.nprobe)        # (b, nprobe)
        nprobe = probes.shape[1]
        indptr = index.indptr
        sizes = np.where(probes >= 0,
                         np.diff(indptr)[np.clip(probes, 0, None)], 0)
        max_len = int(sizes.max()) if sizes.size else 0
        if max_len == 0:
            self.stats["fallback_rows"] += b
            return self._recommend_exact(state, block_users, k)

        dtype = snapshot.user_emb.dtype
        cand_scores = arena.empty((b, nprobe, max_len), dtype)
        cand_scores[...] = -np.inf
        cand_ids = arena.empty((b, nprobe, max_len), np.int64)
        cand_ids[...] = -1

        # Group (user, probe-slot) pairs by probed cell so each cell is
        # one contiguous-slice GEMM over every user that probes it.
        flat_cells = probes.ravel()
        valid = flat_cells >= 0
        pair_rows = np.repeat(np.arange(b), nprobe)[valid]
        pair_slots = np.tile(np.arange(nprobe), b)[valid]
        cells, inverse = np.unique(flat_cells[valid], return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=len(cells))
        starts = np.concatenate(([0], np.cumsum(counts)))
        for ci in range(len(cells)):
            members = order[starts[ci]:starts[ci + 1]]
            lo, hi = int(indptr[cells[ci]]), int(indptr[cells[ci] + 1])
            if hi == lo:
                continue
            rows = pair_rows[members]
            seg_scores = user_block[rows] @ index.grouped_emb[lo:hi].T
            cand_scores[rows, pair_slots[members], :hi - lo] = seg_scores
            cand_ids[rows, pair_slots[members], :hi - lo] = \
                index.grouped_ids[lo:hi]

        flat_scores = cand_scores.reshape(b, nprobe * max_len)
        flat_ids = cand_ids.reshape(b, nprobe * max_len)
        if flat_scores.shape[1] < k:
            # Probed cells cannot even hold k candidates (thin buckets):
            # the whole block goes exact.
            arena.release(cand_scores)
            arena.release(cand_ids)
            self.stats["fallback_rows"] += b
            return self._recommend_exact(state, block_users, k)
        if self.mask_train and state.train_keys.size:
            keys = block_users[:, None] * snapshot.num_items + flat_ids
            pos = np.clip(np.searchsorted(state.train_keys, keys), 0,
                          state.train_keys.size - 1)
            is_train = (state.train_keys[pos] == keys) & (flat_ids >= 0)
            flat_scores[is_train] = -np.inf

        top = top_k_indices(flat_scores, k)
        top_ids = np.take_along_axis(flat_ids, top, axis=-1)
        top_scores = np.take_along_axis(flat_scores, top, axis=-1)
        arena.release(cand_scores)
        arena.release(cand_ids)

        # A -inf (or id -1) in the selection means the probed cells held
        # fewer than k unmasked candidates — rescore those rows exactly.
        short = ~np.isfinite(top_scores).all(axis=-1)
        if short.any():
            self.stats["fallback_rows"] += int(short.sum())
            top_ids[short] = self._recommend_exact(state, block_users[short],
                                                   k)
        return top_ids

    # -- cold path -----------------------------------------------------
    def _cold_vector(self, state: _ServingState,
                     friend_ids: Sequence[int]) -> np.ndarray:
        if self.model is not None:
            from repro.models.coldstart import embed_cold_user

            return embed_cold_user(self.model, friend_ids)
        return cold_user_embedding(state.snapshot, friend_ids)

    def _recommend_cold(self, state: _ServingState, cold_users: np.ndarray,
                        k: int) -> np.ndarray:
        """Cold users: embed from friends, exact-score, no train mask.

        Always exact — an ANN index probed with an out-of-distribution
        social-mean vector is the worst case for recall, and cold users
        are rare enough that the full GEMM is cheap.
        """
        snapshot = state.snapshot
        vectors = np.stack([
            self._cold_vector(state, snapshot.social_row(user))
            for user in cold_users])
        scores = vectors @ np.asarray(snapshot.item_emb).T
        return top_k_indices(scores, k)

    def __repr__(self) -> str:
        state = self._state
        return (f"RecommendService(retrieval={self.retrieval!r}, "
                f"snapshot={state.snapshot.version!r}, "
                f"block_size={self.block_size}, stats={self.stats})")
