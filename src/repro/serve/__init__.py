"""Online serving: snapshot store, batched ranking, ANN retrieval.

The training side of the repository ends at a trained model; this
package is the inference side — the offline-train/online-serve split of
production recommenders (cf. "Tripartite Heterogeneous Graph
Propagation for Large-scale Social Recommendation"):

* :mod:`repro.serve.snapshot` — versioned, checksummed, memory-mapped
  :class:`EmbeddingSnapshot` artifacts published by a
  :class:`SnapshotStore` and shared read-only across serving workers;
* :mod:`repro.serve.ann` — pure-numpy approximate retrieval indexes
  (IVF coarse quantization and random-hyperplane LSH) over the item
  embeddings;
* :mod:`repro.serve.service` — :class:`RecommendService`, the batched
  ``recommend(user_ids, k)`` entry point with train-item masking,
  arena-backed score blocks, exact/IVF/LSH retrieval and automatic
  cold-user dispatch.
"""

from repro.serve.ann import (
    CoarseIndex,
    build_ivf_index,
    build_lsh_index,
)
from repro.serve.service import (
    RecommendService,
    cold_user_embedding,
    topk_recall,
)
from repro.serve.snapshot import (
    EmbeddingSnapshot,
    SnapshotIntegrityError,
    SnapshotStore,
)

__all__ = [
    "CoarseIndex",
    "EmbeddingSnapshot",
    "RecommendService",
    "SnapshotIntegrityError",
    "SnapshotStore",
    "build_ivf_index",
    "build_lsh_index",
    "cold_user_embedding",
    "topk_recall",
]
