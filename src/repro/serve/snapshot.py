"""Versioned, memory-mapped embedding snapshots.

A snapshot is the frozen output of one training run, holding exactly
what the request path needs and nothing else:

* the final user/item embedding matrices (the model's
  ``final_embeddings()``, stored in their native dtype — ``float32``
  under the production precision policy);
* the train-interaction CSR (``indptr``/``indices`` only, in the
  engine index dtype) used to mask already-seen items per user;
* the social CSR, which drives the cold-user dispatch (users with
  social edges but no train interactions).

Arrays are persisted as raw little-endian binaries and opened with
``np.memmap(mode="r")``, so N serving workers on one host share a
single physical copy through the page cache.  ``meta.json`` records
shape, dtype and a SHA-256 checksum per array; :meth:`SnapshotStore.load`
verifies the checksums before handing the snapshot out (opt out with
``validate=False`` when startup latency matters more than corruption
detection).

Publication is atomic: a snapshot is materialized under a temporary
directory inside the store root, renamed to its final ``v<NNNNNN>``
name in one ``os.rename``, and only then does the ``LATEST`` pointer
move (written via temp-file + ``os.replace``).  A reader following
``load_latest()`` therefore never observes a half-written snapshot,
and a crashed publisher leaves at worst an orphaned temp directory.

Determinism: persistence is bytes-exact — a published-and-reloaded
snapshot compares ``np.array_equal`` to the arrays it was built from,
whether the producer was the single-process ``Trainer`` or a
``ParallelTrainer`` fleet (``repro.train.train_and_publish`` is the
training-side handoff).  There are no environment knobs here; the
arrays inherit whatever ``REPRO_ENGINE_DTYPE`` /
``REPRO_ENGINE_INDEX_DTYPE`` produced them (see ``docs/operations.md``).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.data.split import Split
from repro.engine.precision import index_dtype_for

FORMAT_VERSION = 1

#: Array members persisted per snapshot, in a fixed order.
ARRAY_NAMES = ("user_emb", "item_emb", "train_indptr", "train_indices",
               "social_indptr", "social_indices")

_LATEST = "LATEST"


class SnapshotIntegrityError(RuntimeError):
    """A persisted snapshot failed checksum or metadata validation."""


def _relabel_csr(matrix: sp.csr_matrix, map_rows, map_cols) -> sp.csr_matrix:
    """Rebuild a CSR with every row/col id passed through a mapping.

    Used at the permutation boundary to translate internal-id masks back
    to original ids (the mappings are ``NodePermutation.original_*``).
    """
    coo = matrix.tocoo()
    return sp.csr_matrix(
        (coo.data, (map_rows(coo.row.astype(np.int64)),
                    map_cols(coo.col.astype(np.int64)))),
        shape=matrix.shape)


def _sha256_file(path: Path, chunk_bytes: int = 1 << 22) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class EmbeddingSnapshot:
    """Frozen user/item embeddings plus the serving-side graph masks.

    Attributes are plain ``np.ndarray`` when built in memory and
    read-only ``np.memmap`` views when loaded from a store — the
    serving code treats both identically.
    """

    user_emb: np.ndarray
    item_emb: np.ndarray
    train_indptr: np.ndarray
    train_indices: np.ndarray
    social_indptr: np.ndarray
    social_indices: np.ndarray
    version: Optional[str] = None
    meta: Dict[str, object] = field(default_factory=dict)

    # -- shape / lookup helpers ----------------------------------------
    @property
    def num_users(self) -> int:
        return int(self.user_emb.shape[0])

    @property
    def num_items(self) -> int:
        return int(self.item_emb.shape[0])

    @property
    def embed_dim(self) -> int:
        return int(self.user_emb.shape[1])

    def train_row(self, user: int) -> np.ndarray:
        """Train-item ids of one user (sorted, possibly empty)."""
        return self.train_indices[self.train_indptr[user]:
                                  self.train_indptr[user + 1]]

    def social_row(self, user: int) -> np.ndarray:
        """Friend ids of one user (sorted, possibly empty)."""
        return self.social_indices[self.social_indptr[user]:
                                   self.social_indptr[user + 1]]

    def cold_user_mask(self, users: np.ndarray) -> np.ndarray:
        """True for users with social edges but no train interactions."""
        users = np.asarray(users, dtype=np.int64)
        no_train = (self.train_indptr[users + 1]
                    == self.train_indptr[users])
        has_social = (self.social_indptr[users + 1]
                      > self.social_indptr[users])
        return no_train & has_social

    # -- construction ---------------------------------------------------
    @classmethod
    def from_model(cls, model, split: Optional[Split] = None,
                   permutation=None, **meta) -> "EmbeddingSnapshot":
        """Snapshot a trained model (and the split's train mask).

        ``split`` supplies the train-interaction CSR; when omitted the
        model graph's interaction matrix is used (correct whenever the
        graph was built from the training pairs, the repository norm).
        Embeddings are stored exactly as ``final_embeddings()`` returns
        them — no cast — so serving from the snapshot is bitwise
        identical to serving from the live model.

        When the model was trained on a reordered split
        (:mod:`repro.graph.reorder`), pass the producing
        :class:`~repro.graph.reorder.NodePermutation`: embedding rows
        are restored to original-id order and both CSR masks are
        rebuilt in original ids, so the published snapshot — and every
        serving component on top of it — speaks original ids only.
        """
        user_emb, item_emb = model.final_embeddings()
        graph = model.graph
        if split is not None:
            train = split.train_matrix().tocsr()
        else:
            train = graph.interaction.tocsr()
        social = graph.social.tocsr()
        if permutation is not None:
            user_emb = permutation.restore_user_rows(np.asarray(user_emb))
            item_emb = permutation.restore_item_rows(np.asarray(item_emb))
            train = _relabel_csr(train, permutation.original_users,
                                 permutation.original_items)
            social = _relabel_csr(social, permutation.original_users,
                                  permutation.original_users)
        train.sort_indices()
        social.sort_indices()
        index_dtype = index_dtype_for(
            max(graph.num_users, graph.num_items, train.nnz, social.nnz))
        payload = {
            "tau": bool(getattr(model, "use_tau", False)),
            "model": getattr(model, "name", type(model).__name__),
        }
        payload.update(meta)
        return cls(
            user_emb=np.ascontiguousarray(user_emb),
            item_emb=np.ascontiguousarray(item_emb),
            train_indptr=train.indptr.astype(index_dtype, copy=False),
            train_indices=train.indices.astype(index_dtype, copy=False),
            social_indptr=social.indptr.astype(index_dtype, copy=False),
            social_indices=social.indices.astype(index_dtype, copy=False),
            meta=payload,
        )

    # -- (de)serialization ---------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        return {name: getattr(self, name) for name in ARRAY_NAMES}

    def write_to(self, directory: Path) -> None:
        """Persist every array plus ``meta.json`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Dict[str, object]] = {}
        for name, array in self.arrays().items():
            array = np.ascontiguousarray(array)
            path = directory / f"{name}.bin"
            with open(path, "wb") as handle:
                handle.write(array.tobytes())
            manifest[name] = {
                "shape": list(array.shape),
                "dtype": array.dtype.str,
                "sha256": _sha256_file(path),
            }
        meta = {
            "format_version": FORMAT_VERSION,
            "arrays": manifest,
            "extra": self.meta,
        }
        (directory / "meta.json").write_text(json.dumps(meta, indent=2))

    @classmethod
    def read_from(cls, directory: Path, mmap: bool = True,
                  validate: bool = True) -> "EmbeddingSnapshot":
        """Open a persisted snapshot (memory-mapped by default)."""
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            raise SnapshotIntegrityError(f"no meta.json in {directory}")
        meta = json.loads(meta_path.read_text())
        if meta.get("format_version") != FORMAT_VERSION:
            raise SnapshotIntegrityError(
                f"unsupported snapshot format {meta.get('format_version')!r} "
                f"in {directory} (expected {FORMAT_VERSION})")
        manifest = meta.get("arrays", {})
        loaded: Dict[str, np.ndarray] = {}
        for name in ARRAY_NAMES:
            spec = manifest.get(name)
            if spec is None:
                raise SnapshotIntegrityError(
                    f"snapshot {directory} is missing array {name!r}")
            path = directory / f"{name}.bin"
            shape = tuple(int(s) for s in spec["shape"])
            dtype = np.dtype(spec["dtype"])
            expected_bytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            if not path.exists() or path.stat().st_size != expected_bytes:
                raise SnapshotIntegrityError(
                    f"snapshot array {name!r} in {directory} has "
                    f"{path.stat().st_size if path.exists() else 'no'} bytes, "
                    f"expected {expected_bytes}")
            if validate and _sha256_file(path) != spec["sha256"]:
                raise SnapshotIntegrityError(
                    f"checksum mismatch for array {name!r} in {directory}")
            if mmap:
                loaded[name] = np.memmap(path, dtype=dtype, mode="r",
                                         shape=shape)
            else:
                array = np.fromfile(path, dtype=dtype).reshape(shape)
                loaded[name] = array
        return cls(version=directory.name, meta=meta.get("extra", {}),
                   **loaded)

    def __repr__(self) -> str:
        return (f"EmbeddingSnapshot(version={self.version!r}, "
                f"users={self.num_users}, items={self.num_items}, "
                f"d={self.embed_dim}, dtype={self.user_emb.dtype.name})")


class SnapshotStore:
    """A directory of versioned snapshots with an atomic LATEST pointer.

    Layout::

        root/
          v000001/  user_emb.bin item_emb.bin ... meta.json
          v000002/  ...
          LATEST    ("v000002\\n")

    ``publish`` assigns the next version number, materializes the
    snapshot under a temp name, renames it into place and then moves
    ``LATEST`` — each step atomic, so concurrent readers always see a
    complete snapshot.  ``load_latest`` follows the pointer;
    ``load`` opens any retained version (instant rollback).
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- versions -------------------------------------------------------
    def versions(self) -> List[str]:
        """Published version names, oldest first."""
        found = []
        for path in self.root.iterdir():
            if (path.is_dir() and path.name.startswith("v")
                    and (path / "meta.json").exists()):
                found.append(path.name)
        return sorted(found)

    def latest_version(self) -> Optional[str]:
        """The version ``LATEST`` points at (None for an empty store)."""
        pointer = self.root / _LATEST
        if pointer.exists():
            name = pointer.read_text().strip()
            if (self.root / name / "meta.json").exists():
                return name
        versions = self.versions()
        return versions[-1] if versions else None

    # -- lifecycle ------------------------------------------------------
    def publish(self, snapshot: EmbeddingSnapshot) -> str:
        """Persist ``snapshot`` as the next version and move LATEST.

        Returns the assigned version name (also set on the snapshot).
        """
        versions = self.versions()
        next_number = (int(versions[-1][1:]) + 1) if versions else 1
        while True:
            name = f"v{next_number:06d}"
            final = self.root / name
            if not final.exists():
                break
            next_number += 1
        staging = Path(tempfile.mkdtemp(prefix=f".staging-{name}-",
                                        dir=self.root))
        try:
            snapshot.write_to(staging)
            os.rename(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._point_latest(name)
        snapshot.version = name
        return name

    def _point_latest(self, name: str) -> None:
        fd, tmp = tempfile.mkstemp(prefix=".latest-", dir=self.root)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(name + "\n")
            os.replace(tmp, self.root / _LATEST)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def load(self, version: str, mmap: bool = True,
             validate: bool = True) -> EmbeddingSnapshot:
        """Open one retained version (checksum-validated by default)."""
        return EmbeddingSnapshot.read_from(self.root / version, mmap=mmap,
                                           validate=validate)

    def load_latest(self, mmap: bool = True,
                    validate: bool = True) -> EmbeddingSnapshot:
        """Open the snapshot ``LATEST`` points at."""
        name = self.latest_version()
        if name is None:
            raise FileNotFoundError(f"no snapshots published under {self.root}")
        return self.load(name, mmap=mmap, validate=validate)

    def prune(self, keep: int = 3) -> List[str]:
        """Delete all but the ``keep`` newest versions; returns deleted."""
        versions = self.versions()
        latest = self.latest_version()
        deletable = [v for v in versions[:-keep] if v != latest] if keep else [
            v for v in versions if v != latest]
        for name in deletable:
            shutil.rmtree(self.root / name, ignore_errors=True)
        return deletable

    def __repr__(self) -> str:
        return (f"SnapshotStore(root={str(self.root)!r}, "
                f"versions={self.versions()}, latest={self.latest_version()!r})")
