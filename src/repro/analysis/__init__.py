"""Post-hoc analysis of trained models: disentanglement and error structure."""

from repro.analysis.disentanglement import (
    gate_entropy,
    gate_specialization,
    unit_usage,
    disentanglement_report,
)
from repro.analysis.errors import (
    performance_by_item_popularity,
    performance_by_user_degree,
)

__all__ = [
    "gate_entropy",
    "gate_specialization",
    "unit_usage",
    "disentanglement_report",
    "performance_by_user_degree",
    "performance_by_item_popularity",
]
