"""Error-structure analysis: where does a model succeed and fail?

Complements the Fig. 6 sparsity study with item-side and user-side
breakdowns computed from a single scored candidate grid.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.data.sampling import EvalCandidates
from repro.data.split import Split
from repro.eval.metrics import ranking_metrics
from repro.eval.sparsity import group_users_by_quantile


def performance_by_user_degree(model, split: Split, candidates: EvalCandidates,
                               num_groups: int = 4,
                               ks=(10,)) -> List[Dict[str, float]]:
    """Metrics per training-interaction-count quantile (sparsest first)."""
    degrees = split.dataset.user_degrees(split.train_pairs)[candidates.users]
    scores = np.asarray(model.score_candidates(candidates.users,
                                               candidates.items))
    results = []
    for positions in group_users_by_quantile(degrees.astype(float), num_groups):
        metrics = ranking_metrics(scores[positions], ks=ks)
        metrics["mean_degree"] = float(degrees[positions].mean()) if len(positions) else 0.0
        results.append(metrics)
    return results


def performance_by_item_popularity(model, split: Split,
                                   candidates: EvalCandidates,
                                   num_groups: int = 4,
                                   ks=(10,)) -> List[Dict[str, float]]:
    """Metrics per held-out-item popularity quantile (coldest items first).

    Groups test *users* by the training popularity of their held-out
    positive, exposing popularity bias: models that only learn popularity
    collapse on the cold groups.
    """
    popularity = np.bincount(split.train_pairs[:, 1],
                             minlength=split.dataset.num_items)
    positive_popularity = popularity[candidates.items[:, 0]]
    scores = np.asarray(model.score_candidates(candidates.users,
                                               candidates.items))
    results = []
    for positions in group_users_by_quantile(
            positive_popularity.astype(float), num_groups):
        metrics = ranking_metrics(scores[positions], ks=ks)
        metrics["mean_popularity"] = (float(positive_popularity[positions].mean())
                                      if len(positions) else 0.0)
        results.append(metrics)
    return results
