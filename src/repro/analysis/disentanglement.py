"""Quantifying what the memory units learned.

The paper argues (RQ7) that DGNN's memory units disentangle
relation-specific factors.  These statistics make the claim measurable
for any trained model:

* :func:`gate_entropy` — how concentrated each node's gate distribution
  is (low entropy = the node commits to few units);
* :func:`unit_usage` — how evenly the population uses the units (a
  dead-unit detector);
* :func:`gate_specialization` — how differently two banks gate the same
  nodes (the cross-relation disentanglement signal of Fig. 10).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.models.dgnn import DGNN


def _to_distribution(gates: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Shift/normalize raw (possibly negative) gate vectors to simplex rows."""
    shifted = gates - gates.min(axis=1, keepdims=True) + eps
    return shifted / shifted.sum(axis=1, keepdims=True)


def gate_entropy(gates: np.ndarray) -> float:
    """Mean normalized entropy of per-node gate distributions (in [0, 1]).

    0 means every node uses a single unit; 1 means perfectly uniform use.
    """
    dist = _to_distribution(np.asarray(gates, dtype=np.float64))
    entropy = -(dist * np.log(dist)).sum(axis=1)
    return float(entropy.mean() / np.log(dist.shape[1]))


def unit_usage(gates: np.ndarray) -> np.ndarray:
    """Population-level share of each unit's (normalized) gate mass."""
    dist = _to_distribution(np.asarray(gates, dtype=np.float64))
    return dist.mean(axis=0)


def gate_specialization(gates_a: np.ndarray, gates_b: np.ndarray) -> float:
    """Mean per-node total-variation distance between two banks' gates.

    High values mean the banks attend to different units for the same
    nodes — the disentanglement across relation types the paper claims.
    """
    dist_a = _to_distribution(np.asarray(gates_a, dtype=np.float64))
    dist_b = _to_distribution(np.asarray(gates_b, dtype=np.float64))
    if dist_a.shape != dist_b.shape:
        raise ValueError("gate matrices must have matching shapes")
    return float(0.5 * np.abs(dist_a - dist_b).sum(axis=1).mean())


def disentanglement_report(model: DGNN) -> Dict[str, float]:
    """Summary statistics of a trained DGNN's user-side banks."""
    social = model.memory_attention("social")
    self_user = model.memory_attention("self_user")
    usage = unit_usage(social)
    return {
        "social_gate_entropy": gate_entropy(social),
        "self_gate_entropy": gate_entropy(self_user),
        "cross_bank_specialization": gate_specialization(social, self_user),
        "max_unit_share": float(usage.max()),
        "min_unit_share": float(usage.min()),
    }
