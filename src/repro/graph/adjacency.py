"""Sparse adjacency normalization helpers shared by all GNN models.

These are the *builders*; models should not call them per batch.  The
memoizing layer (:mod:`repro.engine.adjcache`) invokes them once per
``(matrix, scheme, dtype)`` and hands out the cached CSR result afterwards.

Canonicalization follows the engine precision policy
(:mod:`repro.engine.precision`): matrices are coerced to CSR with sorted
indices in the *active* engine dtype — float64 unless the run opted down
to float32.  ``as_csr64`` / ``assert_csr64`` keep their historical names
(the canonical dtype was hard-coded float64 before the policy existed)
but now mean "canonical CSR in the engine dtype".

Index arrays are canonicalized too: ``indices`` and ``indptr`` are
coerced to the engine *index* dtype for the matrix's column count
(:func:`repro.engine.precision.index_dtype_for` — ``int32`` unless the
graph is too large), so a scipy matrix assembled with mixed int32/int64
index arrays can never reach the kernels inconsistently.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.engine.precision import get_dtype, index_dtype_for


def _canonical_index_dtype(matrix: sp.spmatrix) -> np.dtype:
    # Indices address columns; indptr addresses positions in data (nnz).
    # One shared dtype keeps scipy's compiled kernels on a single
    # signature, so size the policy for the larger of the two domains.
    return index_dtype_for(max(matrix.shape[1], matrix.nnz))


def as_csr64(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Coerce to canonical format: CSR, engine dtypes, sorted indices."""
    matrix = sp.csr_matrix(matrix, dtype=get_dtype())
    index_dtype = _canonical_index_dtype(matrix)
    if matrix.indices.dtype != index_dtype or matrix.indptr.dtype != index_dtype:
        # Assign the arrays directly: scipy's (data, indices, indptr)
        # constructor re-runs its own index-dtype selection and downcasts
        # int64 arrays back to int32 whenever the values fit, silently
        # undoing an int64 policy.  Rewrap first so the upcast never
        # mutates a caller-owned matrix object.
        matrix = sp.csr_matrix(
            (matrix.data, matrix.indices, matrix.indptr),
            shape=matrix.shape, copy=False)
        matrix.indices = matrix.indices.astype(index_dtype, copy=False)
        matrix.indptr = matrix.indptr.astype(index_dtype, copy=False)
    matrix.sort_indices()
    return matrix


def assert_csr64(matrix: sp.spmatrix, name: str = "matrix") -> sp.csr_matrix:
    """Raise unless ``matrix`` already is canonical CSR in the engine dtypes."""
    if not sp.issparse(matrix) or matrix.format != "csr":
        raise TypeError(f"{name} must be a CSR matrix, got "
                        f"{getattr(matrix, 'format', type(matrix).__name__)!r}")
    if matrix.dtype != get_dtype():
        raise TypeError(f"{name} must be {get_dtype().name}, got {matrix.dtype}")
    index_dtype = _canonical_index_dtype(matrix)
    if matrix.indices.dtype != index_dtype or matrix.indptr.dtype != index_dtype:
        raise TypeError(
            f"{name} must carry {index_dtype.name} indices/indptr, got "
            f"{matrix.indices.dtype.name}/{matrix.indptr.dtype.name}")
    return matrix


def row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Divide each row by its sum (rows summing to zero stay zero).

    This is the ``1/|N(t)|`` mean-aggregation normalization the paper uses
    in Eqs. 4–6.
    """
    matrix = sp.csr_matrix(matrix, dtype=get_dtype())
    row_sums = np.asarray(matrix.sum(axis=1)).reshape(-1)
    inverse = np.zeros_like(row_sums)
    nonzero = row_sums > 0
    inverse[nonzero] = 1.0 / row_sums[nonzero]
    return as_csr64(sp.diags(inverse) @ matrix)


def symmetric_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Apply ``D^{-1/2} A D^{-1/2}`` (the GCN / LightGCN normalization)."""
    matrix = sp.csr_matrix(matrix, dtype=get_dtype())
    degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = degrees[nonzero] ** -0.5
    scale = sp.diags(inv_sqrt)
    return as_csr64(scale @ matrix @ scale)


def add_self_loops(matrix: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` for a square sparse matrix."""
    matrix = sp.csr_matrix(matrix, dtype=get_dtype())
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("self loops require a square matrix")
    return (matrix + weight * sp.eye(matrix.shape[0], format="csr")).tocsr()


def bipartite_norm_adjacency(interaction: sp.spmatrix) -> sp.csr_matrix:
    """Build the symmetric-normalized joint user–item adjacency.

    Given the ``(I, J)`` interaction matrix ``R``, returns the
    ``(I+J, I+J)`` matrix ``D^{-1/2} [[0, R], [R^T, 0]] D^{-1/2}`` used by
    NGCF / GCCF / LightGCN-style collaborative filtering.
    """
    interaction = sp.csr_matrix(interaction, dtype=get_dtype())
    num_users, num_items = interaction.shape
    upper = sp.hstack([sp.csr_matrix((num_users, num_users)), interaction])
    lower = sp.hstack([interaction.T, sp.csr_matrix((num_items, num_items))])
    joint = sp.vstack([upper, lower]).tocsr()
    return symmetric_normalize(joint)
