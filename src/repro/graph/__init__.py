"""Collaborative heterogeneous graph (Eq. 1 of the paper) and adjacency utilities."""

from repro.graph.hetero import CollaborativeHeteroGraph, EdgeSet
from repro.graph.sampling import expand_neighborhood, induced_subgraph, InducedSubgraph
from repro.graph.adjacency import (
    row_normalize,
    symmetric_normalize,
    bipartite_norm_adjacency,
    add_self_loops,
)

__all__ = [
    "CollaborativeHeteroGraph",
    "EdgeSet",
    "row_normalize",
    "symmetric_normalize",
    "bipartite_norm_adjacency",
    "add_self_loops",
    "expand_neighborhood",
    "induced_subgraph",
    "InducedSubgraph",
]
