"""Collaborative heterogeneous graph (Eq. 1 of the paper) and adjacency utilities."""

from repro.graph.hetero import CollaborativeHeteroGraph, EdgeSet
from repro.graph.sampling import (
    InducedSubgraph,
    SubgraphView,
    build_subgraph_view,
    expand_neighborhood,
    expand_neighborhood_loop,
    induced_subgraph,
    sample_subgraph_view,
)
from repro.graph.adjacency import (
    row_normalize,
    symmetric_normalize,
    bipartite_norm_adjacency,
    add_self_loops,
)
from repro.graph.reorder import (
    NodePermutation,
    REORDER_STRATEGIES,
    build_permutation,
    reorder_split,
)

__all__ = [
    "CollaborativeHeteroGraph",
    "EdgeSet",
    "NodePermutation",
    "REORDER_STRATEGIES",
    "build_permutation",
    "reorder_split",
    "row_normalize",
    "symmetric_normalize",
    "bipartite_norm_adjacency",
    "add_self_loops",
    "expand_neighborhood",
    "expand_neighborhood_loop",
    "induced_subgraph",
    "InducedSubgraph",
    "SubgraphView",
    "build_subgraph_view",
    "sample_subgraph_view",
]
