"""Node reordering: cache-friendly id layouts behind an explicit permutation.

Every hot kernel in the system — spmm over the heterogeneous adjacencies,
embedding-row gathers, serving score blocks — streams memory in node-id
order, and the raw dataset's ids arrive in whatever order the dump
happened to use.  Relabeling nodes so that graph neighbours sit at nearby
ids turns the kernels' scattered reads into banded ones, which is what
the cache-blocked spmm in :mod:`repro.engine.locality` exploits.

The contract is an explicit :class:`NodePermutation` object rather than
an in-place relabel: *internal* ids (model tables, graph matrices,
splits) live in the permuted space, and every external boundary — eval
metrics, :func:`repro.eval.full_ranking.full_ranking_topk`, serving
snapshots, checkpoints — maps back through the permutation so callers
only ever see original ids.  Ranking metrics and top-k id *sets* are
invariant under any relabeling (property-tested in
``tests/test_graph_reorder.py``); what changes is purely the memory
layout.

Strategies
----------
``"identity"``
    No-op layout; the oracle every other strategy is benchmarked against.
``"degree"``
    Users and items sorted by interaction degree, descending (stable).
    Clusters the power-law hubs at the front of the embedding tables so
    the hot rows share cache lines.
``"rcm"``
    Reverse Cuthill–McKee over the user–item bipartite graph with the
    symmetrized social block folded into the user–user corner,
    ``[[S, Y], [Yᵀ, 0]]``.  Produces banded interaction *and* social
    matrices where community structure exists; costs a few milliseconds
    even at the ``large`` preset.

Use :func:`build_permutation` to construct one, then
:meth:`NodePermutation.permute_split` / :meth:`~NodePermutation.
permute_dataset` to relabel the data a graph is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.data.dataset import InteractionDataset
from repro.data.split import Split

#: Node-reordering strategies accepted by :func:`build_permutation`.
REORDER_STRATEGIES = ("identity", "degree", "rcm")


def _check_permutation(perm: np.ndarray, size: int, name: str) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (size,):
        raise ValueError(f"{name} must have shape ({size},), got {perm.shape}")
    seen = np.zeros(size, dtype=bool)
    valid = (perm >= 0) & (perm < size)
    if not valid.all():
        raise ValueError(f"{name} holds out-of-range ids")
    seen[perm] = True
    if not seen.all():
        raise ValueError(f"{name} is not a permutation (duplicate targets)")
    return perm


def _invert(perm: np.ndarray) -> np.ndarray:
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(len(perm), dtype=perm.dtype)
    return inverse


@dataclass(frozen=True)
class NodePermutation:
    """An explicit relabeling of user and item ids.

    ``user_perm[old_id] = internal_id`` and likewise for items; the
    inverse arrays are derived once at construction.  Relation nodes are
    never permuted — there are at most a few dozen of them and their
    adjacency rows are already dense.

    All mapping helpers are pure and vectorized; ``map_*`` go from
    original ids to internal ids, ``original_*`` go back.
    """

    user_perm: np.ndarray
    item_perm: np.ndarray
    strategy: str = "custom"
    user_inverse: np.ndarray = field(init=False, repr=False)
    item_inverse: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        user_perm = _check_permutation(self.user_perm, len(self.user_perm),
                                       "user_perm")
        item_perm = _check_permutation(self.item_perm, len(self.item_perm),
                                       "item_perm")
        object.__setattr__(self, "user_perm", user_perm)
        object.__setattr__(self, "item_perm", item_perm)
        object.__setattr__(self, "user_inverse", _invert(user_perm))
        object.__setattr__(self, "item_inverse", _invert(item_perm))

    # -- basic facts ----------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self.user_perm)

    @property
    def num_items(self) -> int:
        return len(self.item_perm)

    @property
    def is_identity(self) -> bool:
        return (np.array_equal(self.user_perm, np.arange(self.num_users))
                and np.array_equal(self.item_perm, np.arange(self.num_items)))

    # -- id mapping -----------------------------------------------------
    def map_users(self, user_ids: np.ndarray) -> np.ndarray:
        """Original user ids → internal (permuted) user ids."""
        return self.user_perm[np.asarray(user_ids, dtype=np.int64)]

    def map_items(self, item_ids: np.ndarray) -> np.ndarray:
        """Original item ids → internal (permuted) item ids."""
        return self.item_perm[np.asarray(item_ids, dtype=np.int64)]

    def original_users(self, internal_ids: np.ndarray) -> np.ndarray:
        """Internal user ids → original user ids."""
        return self.user_inverse[np.asarray(internal_ids, dtype=np.int64)]

    def original_items(self, internal_ids: np.ndarray) -> np.ndarray:
        """Internal item ids → original item ids."""
        return self.item_inverse[np.asarray(internal_ids, dtype=np.int64)]

    # -- row-table layout -----------------------------------------------
    def permute_user_rows(self, table: np.ndarray) -> np.ndarray:
        """Reindex a per-user row table from original to internal order."""
        return np.ascontiguousarray(table[self.user_inverse])

    def permute_item_rows(self, table: np.ndarray) -> np.ndarray:
        """Reindex a per-item row table from original to internal order."""
        return np.ascontiguousarray(table[self.item_inverse])

    def restore_user_rows(self, table: np.ndarray) -> np.ndarray:
        """Reindex a per-user row table from internal back to original order."""
        return np.ascontiguousarray(table[self.user_perm])

    def restore_item_rows(self, table: np.ndarray) -> np.ndarray:
        """Reindex a per-item row table from internal back to original order."""
        return np.ascontiguousarray(table[self.item_perm])

    # -- data relabeling ------------------------------------------------
    def permute_dataset(self, dataset: InteractionDataset) -> InteractionDataset:
        """Relabel every edge list of ``dataset`` into internal ids.

        Per-user/per-item metadata arrays planted by the synthetic
        generator (``communities``, ``tastes``, ``categories``) are
        reindexed so downstream consumers stay consistent.
        """
        interactions = dataset.interactions.copy()
        interactions[:, 0] = self.user_perm[interactions[:, 0]]
        interactions[:, 1] = self.item_perm[interactions[:, 1]]
        social = dataset.social_edges.copy()
        social[:, 0] = self.user_perm[social[:, 0]]
        social[:, 1] = self.user_perm[social[:, 1]]
        item_relations = dataset.item_relations.copy()
        item_relations[:, 0] = self.item_perm[item_relations[:, 0]]
        metadata = dict(dataset.metadata or {})
        for key, size, reindex in (
                ("communities", self.num_users, self.user_inverse),
                ("tastes", self.num_users, self.user_inverse),
                ("categories", self.num_items, self.item_inverse)):
            value = metadata.get(key)
            if isinstance(value, np.ndarray) and len(value) == size:
                metadata[key] = value[reindex]
        return InteractionDataset(
            num_users=dataset.num_users,
            num_items=dataset.num_items,
            num_relations=dataset.num_relations,
            interactions=interactions,
            social_edges=social,
            item_relations=item_relations,
            name=dataset.name,
            metadata=metadata,
        )

    def permute_split(self, split: Split) -> Split:
        """Relabel a split (train pairs + held-out test arrays) in place-free form.

        The held-out interactions are exactly the same user/item pairs,
        just under internal ids — so every protocol run on the permuted
        split scores the same underlying predictions.
        """
        train_pairs = split.train_pairs.copy()
        train_pairs[:, 0] = self.user_perm[train_pairs[:, 0]]
        train_pairs[:, 1] = self.item_perm[train_pairs[:, 1]]
        return Split(dataset=self.permute_dataset(split.dataset),
                     train_pairs=train_pairs,
                     test_users=self.user_perm[split.test_users],
                     test_items=self.item_perm[split.test_items])

    # -- persistence ----------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The two defining arrays (for checkpoints and snapshots)."""
        return {"user_perm": self.user_perm, "item_perm": self.item_perm}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray],
                    strategy: str = "restored") -> "NodePermutation":
        return cls(user_perm=np.asarray(arrays["user_perm"], dtype=np.int64),
                   item_perm=np.asarray(arrays["item_perm"], dtype=np.int64),
                   strategy=strategy)

    @classmethod
    def identity(cls, num_users: int, num_items: int) -> "NodePermutation":
        return cls(user_perm=np.arange(num_users, dtype=np.int64),
                   item_perm=np.arange(num_items, dtype=np.int64),
                   strategy="identity")

    def __repr__(self) -> str:
        return (f"NodePermutation(strategy={self.strategy!r}, "
                f"users={self.num_users}, items={self.num_items})")


# ----------------------------------------------------------------------
# Strategy implementations
# ----------------------------------------------------------------------
def _interaction_csr(dataset: InteractionDataset,
                     train_pairs: Optional[np.ndarray]) -> sp.csr_matrix:
    pairs = dataset.interactions if train_pairs is None else train_pairs
    data = np.ones(len(pairs), dtype=np.float64)
    matrix = sp.coo_matrix(
        (data, (pairs[:, 0], pairs[:, 1])),
        shape=(dataset.num_users, dataset.num_items)).tocsr()
    matrix.sum_duplicates()
    return matrix

def _degree_order(degrees: np.ndarray) -> np.ndarray:
    """old→new positions sorting by degree descending (stable by id)."""
    order = np.argsort(-degrees, kind="stable")  # old ids in new order
    return _invert(order.astype(np.int64))


def _social_csr(dataset: InteractionDataset) -> Optional[sp.csr_matrix]:
    """Symmetrized user–user social adjacency, or None when edgeless."""
    edges = dataset.social_edges
    if edges is None or len(edges) == 0:
        return None
    data = np.ones(len(edges), dtype=np.float64)
    social = sp.coo_matrix(
        (data, (edges[:, 0], edges[:, 1])),
        shape=(dataset.num_users, dataset.num_users)).tocsr()
    social.sum_duplicates()
    return social + social.T


def _rcm_orders(matrix: sp.csr_matrix,
                social: Optional[sp.csr_matrix] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Reverse Cuthill–McKee user/item orderings (old→new).

    The ordering graph is the user–item bipartite adjacency with the
    user–user social block (when present) in its top-left corner:
    ``[[S, Y], [Yᵀ, 0]]``.  Including ``S`` matters — the social
    propagation joint streams the same user tables the interaction
    joints do, and omitting it leaves that matrix unbanded under the
    resulting layout.
    """
    num_users, num_items = matrix.shape
    user_block = social if social is not None and social.nnz else None
    bipartite = sp.bmat([[user_block, matrix], [matrix.T, None]],
                        format="csr")
    ordering = np.asarray(
        reverse_cuthill_mckee(bipartite, symmetric_mode=True), dtype=np.int64)
    users_in_order = ordering[ordering < num_users]
    items_in_order = ordering[ordering >= num_users] - num_users
    return _invert(users_in_order), _invert(items_in_order)


def build_permutation(dataset: InteractionDataset, strategy: str = "rcm",
                      train_pairs: Optional[np.ndarray] = None) -> NodePermutation:
    """Build a :class:`NodePermutation` for ``dataset`` under ``strategy``.

    ``train_pairs``, when given, restricts the interaction structure the
    ordering is computed from to the training edges (the standard choice:
    the layout should serve the matrices the kernels actually stream).
    """
    if strategy not in REORDER_STRATEGIES:
        raise ValueError(f"unknown reorder strategy {strategy!r}; "
                         f"known: {REORDER_STRATEGIES}")
    if strategy == "identity":
        return NodePermutation.identity(dataset.num_users, dataset.num_items)
    matrix = _interaction_csr(dataset, train_pairs)
    if strategy == "degree":
        user_perm = _degree_order(np.diff(matrix.indptr))
        item_perm = _degree_order(
            np.bincount(matrix.indices, minlength=dataset.num_items))
    else:  # rcm
        user_perm, item_perm = _rcm_orders(matrix, _social_csr(dataset))
    return NodePermutation(user_perm=user_perm, item_perm=item_perm,
                           strategy=strategy)


def reorder_split(split: Split, strategy: str = "rcm"
                  ) -> Tuple[Split, NodePermutation]:
    """Relabel ``split`` under ``strategy``; returns ``(split, permutation)``.

    The load-time entry point: build the split in original ids, reorder
    it here, then construct the :class:`~repro.graph.hetero.
    CollaborativeHeteroGraph` (and model tables) from the returned split.
    The ordering is computed from the *training* interactions only.
    """
    permutation = build_permutation(split.dataset, strategy,
                                    train_pairs=split.train_pairs)
    if permutation.is_identity:
        return split, permutation
    return permutation.permute_split(split), permutation
