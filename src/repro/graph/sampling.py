"""Neighbourhood sampling and subgraph views for minibatch training.

Full-graph propagation per BPR batch (Alg. 1) is exact but scales with
the whole graph.  For datasets the size of the paper's Epinions/Yelp a
practical trainer propagates only over the batch's L-hop neighbourhood.
This module provides the three pieces of that pipeline:

* :func:`expand_neighborhood` — grow a seed set of users/items through
  the social, interaction and item-relation edges for ``hops`` rounds,
  optionally capping the per-node fan-out (uniform neighbour sampling).
  The default implementation is fully vectorized (ragged CSR gathers +
  lexsort-based fan-out subsampling); the original per-node Python loop
  is kept as :func:`expand_neighborhood_loop`, the parity oracle.
* :class:`SubgraphView` — a lightweight view of the induced subgraph
  that *slices the parent graph's cached normalized adjacencies* row- and
  column-wise in one ragged CSR pass.  No ``InteractionDataset`` or
  ``CollaborativeHeteroGraph`` is rebuilt per batch, message weights keep
  their full-graph normalizers (so the uncapped closure reproduces
  full-graph propagation exactly), and only the adjacencies a model's
  layer stack actually touches are materialized, lazily.
* :func:`induced_subgraph` — the original heavyweight construction: a
  fully functional :class:`~repro.graph.hetero.CollaborativeHeteroGraph`
  over the induced node sets with normalizers recomputed on the *induced*
  degrees (the GraphSAGE-style approximation).  Kept for ablations and as
  the oracle the view tests compare structure against.

One hop adds, per relation type: social neighbours of current users,
items of current users, users of current items, and relation-co-members
of current items (item → relation node → item, in one round — relation
nodes themselves are few and are always all kept).  The co-membership
round is what makes the uncapped closure exact for models whose relation
nodes aggregate over *all* their items (DGNN Eq. 6, NGCF's I-R-I context
channel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.engine.adjcache import cached_transpose
from repro.engine.precision import as_index_array, index_dtype_for
from repro.engine.ragged import gather_ragged_rows
from repro.graph.hetero import CollaborativeHeteroGraph

_EMPTY = np.zeros(0, dtype=np.int64)


# ----------------------------------------------------------------------
# Neighbour gathering: loop oracle and vectorized fast path
# ----------------------------------------------------------------------
def _neighbors_loop(matrix: sp.csr_matrix, nodes: np.ndarray,
                    fanout: Optional[int],
                    rng: np.random.Generator) -> np.ndarray:
    """Union of (possibly subsampled) neighbour sets — per-node loop.

    The transparent reference implementation; the vectorized fast path
    must agree with it exactly when ``fanout`` is ``None``.
    """
    collected = []
    indptr, indices = matrix.indptr, matrix.indices
    for node in nodes:
        row = indices[indptr[node]:indptr[node + 1]]
        if fanout is not None and len(row) > fanout:
            row = rng.choice(row, size=fanout, replace=False)
        collected.append(row)
    if not collected:
        return _EMPTY
    return np.unique(np.concatenate(collected)).astype(
        index_dtype_for(matrix.shape[1]))


def _ragged_gather(indptr: np.ndarray, nodes: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Positions of every CSR entry owned by ``nodes``, plus row layout.

    Thin wrapper over the shared :func:`gather_ragged_rows` helper
    (also used by the full-ranking and serving train-item masks),
    keeping this module's historical tuple return shape.
    """
    gathered = gather_ragged_rows(indptr, nodes)
    return gathered.positions, gathered.counts, gathered.offsets


def _sorted_unique(values: np.ndarray, domain: int) -> np.ndarray:
    """Sorted unique ids via a bitmask over the (small) id domain.

    O(domain + len(values)) instead of ``np.unique``'s sort — node id
    domains are graph-sized, far smaller than the gathered edge lists.
    """
    mask = np.zeros(domain, dtype=bool)
    mask[values] = True
    return np.flatnonzero(mask).astype(index_dtype_for(domain))


def _neighbors_fast(matrix: sp.csr_matrix, nodes: np.ndarray,
                    fanout: Optional[int],
                    rng: np.random.Generator) -> np.ndarray:
    """Union of (possibly subsampled) neighbour sets — no Python loop.

    All rows are gathered with one ragged CSR gather; fan-out capping
    draws uniform random sort keys per edge and keeps each node's first
    ``fanout`` edges in key order — uniform sampling without replacement
    for every node simultaneously.
    """
    if len(nodes) == 0:
        return _EMPTY
    positions, counts, offsets = _ragged_gather(matrix.indptr, nodes)
    if positions.size == 0:
        return _EMPTY
    if fanout is None or int(counts.max()) <= fanout:
        return _sorted_unique(matrix.indices[positions], matrix.shape[1])
    total = positions.size
    # Composite sort key: the integer owner id majors, the random key in
    # [0, 1) minors — one float argsort instead of a two-key lexsort.
    owners = np.repeat(np.arange(len(nodes), dtype=np.float64), counts)
    order = np.argsort(owners + rng.random(total))
    # After the per-owner shuffle the group sizes are unchanged, so the
    # rank of slot j within its owner is j - offsets[owner].
    ranks = np.arange(total) - np.repeat(offsets, counts)
    kept = positions[order[ranks < fanout]]
    return _sorted_unique(matrix.indices[kept], matrix.shape[1])


_NeighborFn = Callable[[sp.csr_matrix, np.ndarray, Optional[int],
                        np.random.Generator], np.ndarray]


def _expand(graph: CollaborativeHeteroGraph, seed_users: np.ndarray,
            seed_items: np.ndarray, hops: int, fanout: Optional[int],
            seed: int, neighbors: _NeighborFn
            ) -> Tuple[np.ndarray, np.ndarray]:
    """The shared hop rule, parameterized by the neighbour gatherer."""
    rng = np.random.default_rng(seed)
    users = np.unique(as_index_array(seed_users, graph.num_users))
    items = np.unique(as_index_array(seed_items, graph.num_items))
    # Matrices are canonically CSR already; transposes are memoized so
    # repeated batch sampling does not rebuild them.
    interaction = graph.interaction
    interaction_t = cached_transpose(interaction)
    social = graph.social
    item_relation = graph.item_relation
    relation_item = cached_transpose(item_relation)
    user_mask = np.zeros(graph.num_users, dtype=bool)
    item_mask = np.zeros(graph.num_items, dtype=bool)
    for _ in range(hops):
        social_users = neighbors(social, users, fanout, rng)
        item_users = neighbors(interaction_t, items, fanout, rng)
        relations = neighbors(item_relation, items, fanout, rng)
        user_items = neighbors(interaction, users, fanout, rng)
        relation_items = neighbors(relation_item, relations, fanout, rng)
        # Mask-based unions: O(num nodes) and already sorted on read-out.
        user_mask[users] = True
        user_mask[social_users] = True
        user_mask[item_users] = True
        item_mask[items] = True
        item_mask[user_items] = True
        item_mask[relation_items] = True
        users = np.flatnonzero(user_mask).astype(
            index_dtype_for(graph.num_users))
        items = np.flatnonzero(item_mask).astype(
            index_dtype_for(graph.num_items))
    return users, items


def expand_neighborhood(graph: CollaborativeHeteroGraph,
                        seed_users: np.ndarray, seed_items: np.ndarray,
                        hops: int = 2, fanout: Optional[int] = None,
                        seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """L-hop user/item closure of the seeds through ``S``, ``Y`` and ``T``.

    Each hop adds: social neighbours of current users, items of current
    users, users of current items, and relation-co-members of current
    items (I → R → I in one round; relation nodes are few and are always
    all kept, so they need no explicit tracking).  ``fanout`` caps the
    neighbours drawn per node per relation — uniform neighbour sampling.

    Fully vectorized (ragged CSR gathers plus lexsort fan-out capping).
    With ``fanout=None`` the result is identical to the per-node loop
    oracle :func:`expand_neighborhood_loop`; with a fan-out cap both draw
    valid uniform samples but consume randomness in different orders.
    """
    return _expand(graph, seed_users, seed_items, hops, fanout, seed,
                   _neighbors_fast)


def expand_neighborhood_loop(graph: CollaborativeHeteroGraph,
                             seed_users: np.ndarray, seed_items: np.ndarray,
                             hops: int = 2, fanout: Optional[int] = None,
                             seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """The per-node-loop reference expansion — the parity oracle."""
    return _expand(graph, seed_users, seed_items, hops, fanout, seed,
                   _neighbors_loop)


# ----------------------------------------------------------------------
# Local id maps
# ----------------------------------------------------------------------
def _validated_local(sorted_ids: np.ndarray, queries: np.ndarray,
                     kind: str) -> np.ndarray:
    """Map sorted global ids to local rows, raising on absent members.

    A bare ``np.searchsorted`` silently returns the insertion point for
    ids missing from the induced set — an off-by-arbitrary local index
    that corrupts the loss downstream.  Membership is validated here and
    absence is a loud error.
    """
    queries = np.asarray(queries, dtype=np.int64)
    local = np.minimum(np.searchsorted(sorted_ids, queries),
                       len(sorted_ids) - 1)
    bad = sorted_ids[local] != queries
    if bad.any():
        missing = np.unique(queries[bad])[:8]
        raise KeyError(f"{kind} ids not present in the induced subgraph: "
                       f"{missing.tolist()}")
    return local


def _local_lookup(ids: np.ndarray, size: int) -> np.ndarray:
    """Dense global→local id table (``-1`` marks absent globals).

    The table is O(global domain) per view, so it follows the engine
    index policy — int32 halves the per-batch lookup footprint.
    """
    dtype = index_dtype_for(size)
    lut = np.full(size, -1, dtype=dtype)
    lut[ids] = np.arange(len(ids), dtype=dtype)
    return lut


# ----------------------------------------------------------------------
# Lightweight subgraph views (the fast minibatch path)
# ----------------------------------------------------------------------
def _induced_csr(matrix: sp.csr_matrix, rows: Optional[np.ndarray],
                 col_lut: np.ndarray, num_cols: int) -> sp.csr_matrix:
    """Slice ``matrix[rows][:, cols]`` in one ragged CSR pass.

    ``rows=None`` keeps every row (used for relation-node rows, which
    are never subsampled).  ``col_lut`` maps global column ids to local
    ones with ``-1`` for columns outside the induced set.  Because the
    induced id arrays are sorted, the local mapping preserves each row's
    column order, so the result has sorted indices and per-row summation
    order identical to the parent's — the property the exactness parity
    tests rely on.
    """
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    if rows is None:
        num_rows = matrix.shape[0]
        counts = np.diff(indptr)
        gathered_cols = indices
        gathered_data = data
    else:
        num_rows = len(rows)
        positions, counts, _ = _ragged_gather(indptr, rows)
        gathered_cols = indices[positions]
        gathered_data = data[positions]
    local_cols = col_lut[gathered_cols]
    keep = local_cols >= 0
    owners = np.repeat(np.arange(num_rows), counts)
    kept_counts = np.bincount(owners[keep], minlength=num_rows)
    kept_cols = local_cols[keep]
    index_dtype = index_dtype_for(max(num_cols, int(kept_cols.size)))
    new_indptr = np.concatenate(([0], np.cumsum(kept_counts))).astype(
        index_dtype)
    return sp.csr_matrix(
        (gathered_data[keep], kept_cols.astype(index_dtype, copy=False),
         new_indptr),
        shape=(num_rows, num_cols))


# Normalized views a SubgraphView can serve, with their row/column node
# spaces.  Each is sliced from the *parent's* cached view of the same
# name, lazily, on first attribute access.
_VIEW_SPECS: Dict[str, Tuple[Optional[str], str]] = {
    # DGNN (Eqs. 4-6, 9)
    "user_social_joint": ("user", "user"),
    "user_item_joint": ("user", "item"),
    "item_user_joint": ("item", "user"),
    "item_relation_joint": ("item", "relation"),
    "relation_item_mean": (None, "item"),  # all relation rows kept
    "social_self_loop_mean": ("user", "user"),
    # Baselines
    "user_item_mean": ("user", "item"),
    "item_user_mean": ("item", "user"),
    "social_mean": ("user", "user"),
    "social_sym": ("user", "user"),
    "item_relation_mean": ("item", "relation"),
    "bipartite_norm": ("joint", "joint"),
    "item_context": ("item", "item"),
}


class SubgraphView:
    """Induced normalized adjacencies sliced straight from the parent.

    The production minibatch path: where :func:`induced_subgraph`
    rebuilds an :class:`InteractionDataset` plus every normalized view
    per batch (re-deriving normalizers from the *induced* degrees), a
    view gathers rows of the parent's already-normalized, already-cached
    matrices and remaps columns through a dense lookup — one ragged CSR
    pass per adjacency, built lazily only for the adjacencies the active
    model's layer stack touches.

    Because entries keep their full-graph normalization weights, running
    a model's layer stack on the view over the *uncapped* L-hop closure
    reproduces full-graph propagation on the batch rows exactly (the
    parity tests assert this); a capped fan-out trades that exactness
    for per-batch cost, GraphSAGE-style.

    The view deliberately quacks like the adjacency surface of
    :class:`~repro.graph.hetero.CollaborativeHeteroGraph`: models address
    it through the same attribute names, and ``view.graph`` returns the
    view itself so code written against
    :class:`InducedSubgraph`'s ``.graph`` indirection runs unchanged.
    """

    def __init__(self, parent: CollaborativeHeteroGraph,
                 user_ids: np.ndarray, item_ids: np.ndarray):
        self._views: Dict[str, sp.csr_matrix] = {}
        self.parent = parent
        self.user_ids = np.unique(as_index_array(user_ids, parent.num_users))
        self.item_ids = np.unique(as_index_array(item_ids, parent.num_items))
        if self.user_ids.size == 0 or self.item_ids.size == 0:
            raise ValueError("subgraph view needs at least one user and item")
        if self.user_ids[0] < 0 or self.user_ids[-1] >= parent.num_users:
            raise ValueError("user ids outside the parent graph")
        if self.item_ids[0] < 0 or self.item_ids[-1] >= parent.num_items:
            raise ValueError("item ids outside the parent graph")
        self.num_users = len(self.user_ids)
        self.num_items = len(self.item_ids)
        self.num_relations = parent.num_relations
        self._user_lut = _local_lookup(self.user_ids, parent.num_users)
        self._item_lut = _local_lookup(self.item_ids, parent.num_items)

    # -- identity / id maps --------------------------------------------
    @property
    def graph(self) -> "SubgraphView":
        """The adjacency provider — the view itself."""
        return self

    def local_users(self, global_users: np.ndarray) -> np.ndarray:
        """Map global user ids to local rows (raises if absent)."""
        local = self._user_lut[as_index_array(global_users,
                                              self.parent.num_users)]
        if (local < 0).any():
            missing = np.unique(np.asarray(global_users)[local < 0])[:8]
            raise KeyError(f"user ids not present in the subgraph view: "
                           f"{missing.tolist()}")
        return local

    def local_items(self, global_items: np.ndarray) -> np.ndarray:
        """Map global item ids to local rows (raises if absent)."""
        local = self._item_lut[as_index_array(global_items,
                                              self.parent.num_items)]
        if (local < 0).any():
            missing = np.unique(np.asarray(global_items)[local < 0])[:8]
            raise KeyError(f"item ids not present in the subgraph view: "
                           f"{missing.tolist()}")
        return local

    # -- lazy sliced views ---------------------------------------------
    def _row_ids(self, space: Optional[str]) -> Optional[np.ndarray]:
        if space is None:
            return None
        if space == "user":
            return self.user_ids
        if space == "item":
            return self.item_ids
        return np.concatenate(
            [self.user_ids, self.parent.num_users + self.item_ids])

    def _col_lut(self, space: str) -> Tuple[np.ndarray, int]:
        if space == "user":
            return self._user_lut, self.num_users
        if space == "item":
            return self._item_lut, self.num_items
        if space == "relation":
            return (np.arange(self.num_relations,
                              dtype=index_dtype_for(self.num_relations)),
                    self.num_relations)
        joint = np.concatenate(
            [self._user_lut,
             np.where(self._item_lut >= 0, self._item_lut + self.num_users,
                      -1)])
        return joint, self.num_users + self.num_items

    def __getattr__(self, name: str) -> sp.csr_matrix:
        spec = _VIEW_SPECS.get(name)
        if spec is None:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}")
        cached = self._views.get(name)
        if cached is None:
            row_space, col_space = spec
            col_lut, num_cols = self._col_lut(col_space)
            cached = _induced_csr(getattr(self.parent, name),
                                  self._row_ids(row_space), col_lut, num_cols)
            self._views[name] = cached
        return cached

    def materialized_views(self) -> Tuple[str, ...]:
        """Names of the adjacencies built so far (introspection/tests)."""
        return tuple(sorted(self._views))

    def __repr__(self) -> str:
        return (f"SubgraphView(users={self.num_users}, items={self.num_items},"
                f" relations={self.num_relations},"
                f" views={list(self.materialized_views())})")


def build_subgraph_view(graph: CollaborativeHeteroGraph, user_ids: np.ndarray,
                        item_ids: np.ndarray) -> SubgraphView:
    """A :class:`SubgraphView` over the given induced node sets."""
    return SubgraphView(graph, user_ids, item_ids)


def sample_subgraph_view(graph: CollaborativeHeteroGraph,
                         seed_users: np.ndarray, seed_items: np.ndarray,
                         hops: int = 2, fanout: Optional[int] = None,
                         seed: int = 0) -> SubgraphView:
    """Expand the seeds and wrap the closure in a view — one call."""
    user_ids, item_ids = expand_neighborhood(
        graph, seed_users, seed_items, hops=hops, fanout=fanout, seed=seed)
    return SubgraphView(graph, user_ids, item_ids)


# ----------------------------------------------------------------------
# Heavyweight induced subgraphs (ablation / oracle path)
# ----------------------------------------------------------------------
@dataclass
class InducedSubgraph:
    """A subgraph plus the maps between global and local ids."""

    graph: CollaborativeHeteroGraph
    user_ids: np.ndarray  # local -> global
    item_ids: np.ndarray

    def local_users(self, global_users: np.ndarray) -> np.ndarray:
        """Map global user ids to local rows (raises if absent)."""
        return _validated_local(self.user_ids, global_users, "user")

    def local_items(self, global_items: np.ndarray) -> np.ndarray:
        """Map global item ids to local rows (raises if absent)."""
        return _validated_local(self.item_ids, global_items, "item")


def induced_subgraph(graph: CollaborativeHeteroGraph, user_ids: np.ndarray,
                     item_ids: np.ndarray) -> InducedSubgraph:
    """The heterogeneous subgraph induced by the given node sets.

    All relation nodes are kept (there are only ``R`` of them); edges are
    those of the parent graph with both endpoints inside the induced
    sets.  Returns a real :class:`CollaborativeHeteroGraph`, so every
    normalized view exists and is consistent with the *induced* degrees —
    the GraphSAGE-style approximation.  The production minibatch path
    uses :class:`SubgraphView` instead, which keeps full-graph
    normalizers and skips the dataset reconstruction.
    """
    user_ids = np.unique(np.asarray(user_ids, dtype=np.int64))
    item_ids = np.unique(np.asarray(item_ids, dtype=np.int64))
    if user_ids.size == 0 or item_ids.size == 0:
        raise ValueError("induced subgraph needs at least one user and item")

    interaction = graph.interaction.tocsr()[user_ids][:, item_ids].tocoo()
    social = graph.social.tocsr()[user_ids][:, user_ids].tocoo()
    item_relation = graph.item_relation.tocsr()[item_ids].tocoo()

    interactions = np.stack([interaction.row, interaction.col], axis=1)
    social_mask = social.row < social.col  # undirected, store once
    social_edges = np.stack([social.row[social_mask],
                             social.col[social_mask]], axis=1)
    relations = np.stack([item_relation.row, item_relation.col], axis=1)

    dataset = InteractionDataset(
        num_users=len(user_ids),
        num_items=len(item_ids),
        num_relations=graph.num_relations,
        interactions=(interactions if len(interactions)
                      else np.zeros((0, 2), dtype=np.int64)),
        social_edges=(social_edges if len(social_edges)
                      else np.zeros((0, 2), dtype=np.int64)),
        item_relations=(relations if len(relations)
                        else np.zeros((0, 2), dtype=np.int64)),
        name=f"{graph.dataset.name}-induced",
    )
    sub = CollaborativeHeteroGraph(dataset,
                                   use_social=graph.use_social,
                                   use_item_relations=graph.use_item_relations)
    return InducedSubgraph(graph=sub, user_ids=user_ids, item_ids=item_ids)
