"""Neighbourhood-induced subgraphs for minibatch training.

Full-graph propagation per BPR batch (Alg. 1) is exact but scales with
the whole graph.  For datasets the size of the paper's Epinions/Yelp a
practical trainer propagates only over the batch's L-hop neighbourhood.
This module provides:

* :func:`expand_neighborhood` — grow a seed set of users/items through
  the social, interaction and item-relation edges for ``hops`` rounds,
  optionally capping the per-node fan-out (uniform neighbour sampling);
* :func:`induced_subgraph` — build a fully functional
  :class:`~repro.graph.hetero.CollaborativeHeteroGraph` over the induced
  node sets, plus the id maps back to the global graph.

The induced object exposes the same joint-normalized views, so any model
layer written against the full graph runs on the subgraph unchanged
(DGNN exposes this through ``propagate_on`` / ``bpr_loss_sampled``).
Note the normalizers are computed on the *induced* degrees — the
standard GraphSAGE-style approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.engine.adjcache import cached_transpose
from repro.graph.hetero import CollaborativeHeteroGraph


def _neighbors(matrix: sp.csr_matrix, nodes: np.ndarray,
               fanout: Optional[int],
               rng: np.random.Generator) -> np.ndarray:
    """Union of (possibly subsampled) neighbour sets of ``nodes``."""
    collected = []
    indptr, indices = matrix.indptr, matrix.indices
    for node in nodes:
        row = indices[indptr[node]:indptr[node + 1]]
        if fanout is not None and len(row) > fanout:
            row = rng.choice(row, size=fanout, replace=False)
        collected.append(row)
    if not collected:
        return np.zeros(0, dtype=np.int64)
    return np.unique(np.concatenate(collected)).astype(np.int64)


def expand_neighborhood(graph: CollaborativeHeteroGraph,
                        seed_users: np.ndarray, seed_items: np.ndarray,
                        hops: int = 2, fanout: Optional[int] = None,
                        seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """L-hop user/item closure of the seeds through Y and S.

    Each hop adds: social neighbours of current users, items of current
    users, and users of current items.  (Relation nodes are few and are
    always all kept, so they need no expansion.)  ``fanout`` caps the
    neighbours drawn per node per relation — uniform neighbour sampling.
    """
    rng = np.random.default_rng(seed)
    users = np.unique(np.asarray(seed_users, dtype=np.int64))
    items = np.unique(np.asarray(seed_items, dtype=np.int64))
    # Matrices are canonically CSR already; the transpose is memoized so
    # repeated batch sampling does not rebuild it (the seed paid a full
    # T.tocsr() conversion per batch here).
    interaction = graph.interaction
    interaction_t = cached_transpose(graph.interaction)
    social = graph.social
    for _ in range(hops):
        new_users = np.union1d(
            _neighbors(social, users, fanout, rng),
            _neighbors(interaction_t, items, fanout, rng))
        new_items = _neighbors(interaction, users, fanout, rng)
        users = np.union1d(users, new_users)
        items = np.union1d(items, new_items)
    return users, items


@dataclass
class InducedSubgraph:
    """A subgraph view plus the maps between global and local ids."""

    graph: CollaborativeHeteroGraph
    user_ids: np.ndarray  # local -> global
    item_ids: np.ndarray

    def local_users(self, global_users: np.ndarray) -> np.ndarray:
        """Map global user ids to local rows (must be present)."""
        return np.searchsorted(self.user_ids, np.asarray(global_users))

    def local_items(self, global_items: np.ndarray) -> np.ndarray:
        """Map global item ids to local rows (must be present)."""
        return np.searchsorted(self.item_ids, np.asarray(global_items))


def induced_subgraph(graph: CollaborativeHeteroGraph, user_ids: np.ndarray,
                     item_ids: np.ndarray) -> InducedSubgraph:
    """The heterogeneous subgraph induced by the given node sets.

    All relation nodes are kept (there are only ``R`` of them); edges are
    those of the parent graph with both endpoints inside the induced
    sets.  Returns a real :class:`CollaborativeHeteroGraph`, so every
    normalized view exists and is consistent with the induced degrees.
    """
    user_ids = np.unique(np.asarray(user_ids, dtype=np.int64))
    item_ids = np.unique(np.asarray(item_ids, dtype=np.int64))
    if user_ids.size == 0 or item_ids.size == 0:
        raise ValueError("induced subgraph needs at least one user and item")

    interaction = graph.interaction.tocsr()[user_ids][:, item_ids].tocoo()
    social = graph.social.tocsr()[user_ids][:, user_ids].tocoo()
    item_relation = graph.item_relation.tocsr()[item_ids].tocoo()

    interactions = np.stack([interaction.row, interaction.col], axis=1)
    social_mask = social.row < social.col  # undirected, store once
    social_edges = np.stack([social.row[social_mask],
                             social.col[social_mask]], axis=1)
    relations = np.stack([item_relation.row, item_relation.col], axis=1)

    dataset = InteractionDataset(
        num_users=len(user_ids),
        num_items=len(item_ids),
        num_relations=graph.num_relations,
        interactions=(interactions if len(interactions)
                      else np.zeros((0, 2), dtype=np.int64)),
        social_edges=(social_edges if len(social_edges)
                      else np.zeros((0, 2), dtype=np.int64)),
        item_relations=(relations if len(relations)
                        else np.zeros((0, 2), dtype=np.int64)),
        name=f"{graph.dataset.name}-induced",
    )
    sub = CollaborativeHeteroGraph(dataset,
                                   use_social=graph.use_social,
                                   use_item_relations=graph.use_item_relations)
    return InducedSubgraph(graph=sub, user_ids=user_ids, item_ids=item_ids)
