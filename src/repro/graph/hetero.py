"""The collaborative heterogeneous graph ``G`` of Eq. 1.

:class:`CollaborativeHeteroGraph` unifies the three relation sets —
user–item interactions ``Y``, user–user social ties ``S`` and
item–relation links ``T`` — into one object that hands models exactly the
sparse views they need:

* *joint-normalized* adjacencies implementing the paper's mean
  aggregation, where a user's normalizer is ``1/(|N^S_u| + |N^Y_u|)``
  (Eq. 4) and an item's is ``1/(|N^Y_v| + |N^T_v|)`` (Eq. 5);
* plain row- or symmetric-normalized per-relation adjacencies for the
  baselines;
* explicit edge lists for attention-based models;
* meta-path adjacencies (U-I-U, I-U-I, I-R-I, U-U) for HAN / HERec.

Ablation variants (``-S``, ``-T``, ``-ST`` in Fig. 5) are expressed by
constructing the graph with ``use_social=False`` / ``use_item_relations=
False``; every view then degrades consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.engine.adjcache import get_cache
from repro.engine.precision import index_dtype_for
from repro.graph.adjacency import (
    as_csr64,
    assert_csr64,
    bipartite_norm_adjacency,
    row_normalize,
)


@dataclass(frozen=True)
class EdgeSet:
    """An explicit directed edge list ``src -> dst`` for one relation type."""

    src: np.ndarray
    dst: np.ndarray
    name: str

    def __len__(self) -> int:
        return len(self.src)


class CollaborativeHeteroGraph:
    """Unified graph over users, items and relation nodes.

    Parameters
    ----------
    dataset:
        The source dataset (provides ``S`` and ``T`` and entity counts).
    train_pairs:
        Training interactions; **must** be the training split to avoid
        test leakage.  Defaults to all interactions (only for exploratory
        use).
    use_social / use_item_relations:
        Ablation switches dropping ``S`` / ``T`` from every view.
    """

    def __init__(self, dataset: InteractionDataset,
                 train_pairs: Optional[np.ndarray] = None,
                 use_social: bool = True,
                 use_item_relations: bool = True):
        self.dataset = dataset
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self.num_relations = max(dataset.num_relations, 1)
        self.use_social = use_social
        self.use_item_relations = use_item_relations

        # All three relation matrices are stored once, in the canonical
        # CSR/float64 format, and asserted — downstream code (kernel
        # backends, ``Recommender.recommend``'s ``indices`` slicing) is
        # allowed to rely on it.
        pairs = dataset.interactions if train_pairs is None else train_pairs
        self.interaction = as_csr64(dataset.interaction_matrix(pairs))
        if use_social:
            self.social = as_csr64(dataset.social_matrix())
        else:
            self.social = as_csr64(
                sp.csr_matrix((self.num_users, self.num_users)))
        if use_item_relations:
            self.item_relation = as_csr64(sp.csr_matrix(
                dataset.item_relation_matrix(),
                shape=(self.num_items, self.num_relations)))
        else:
            self.item_relation = as_csr64(
                sp.csr_matrix((self.num_items, self.num_relations)))
        for name in ("interaction", "social", "item_relation"):
            assert_csr64(getattr(self, name), name)

    # ------------------------------------------------------------------
    # Normalized views through the engine's adjacency cache
    # ------------------------------------------------------------------
    def normalized(self, matrix: sp.spmatrix, scheme: str,
                   builder=None) -> sp.csr_matrix:
        """A cached normalized view of one of this graph's matrices.

        Routed through :mod:`repro.engine.adjcache`, so each
        ``(matrix, scheme)`` pair is normalized at most once per run —
        including for the short-lived graphs of induced subgraphs.
        """
        return get_cache().normalized(matrix, scheme, builder)

    # ------------------------------------------------------------------
    # Degrees and joint normalizers (Eqs. 4-6)
    # ------------------------------------------------------------------
    @cached_property
    def user_degree_social(self) -> np.ndarray:
        return np.asarray(self.social.sum(axis=1)).reshape(-1)

    @cached_property
    def user_degree_interaction(self) -> np.ndarray:
        return np.asarray(self.interaction.sum(axis=1)).reshape(-1)

    @cached_property
    def item_degree_interaction(self) -> np.ndarray:
        return np.asarray(self.interaction.sum(axis=0)).reshape(-1)

    @cached_property
    def item_degree_relation(self) -> np.ndarray:
        return np.asarray(self.item_relation.sum(axis=1)).reshape(-1)

    @cached_property
    def relation_degree(self) -> np.ndarray:
        return np.asarray(self.item_relation.sum(axis=0)).reshape(-1)

    @staticmethod
    def _joint_scale(*degree_vectors: np.ndarray) -> sp.dia_matrix:
        total = np.sum(degree_vectors, axis=0)
        inverse = np.zeros_like(total)
        nonzero = total > 0
        inverse[nonzero] = 1.0 / total[nonzero]
        return sp.diags(inverse)

    @cached_property
    def user_social_joint(self) -> sp.csr_matrix:
        """``S`` scaled by ``1/(|N^S_u| + |N^Y_u|)`` per target user (Eq. 4)."""
        scale = self._joint_scale(self.user_degree_social, self.user_degree_interaction)
        return self.normalized(self.social, "joint_user",
                               builder=lambda m: scale @ m)

    @cached_property
    def user_item_joint(self) -> sp.csr_matrix:
        """``Y`` scaled by the same joint user normalizer (Eq. 4)."""
        scale = self._joint_scale(self.user_degree_social, self.user_degree_interaction)
        return self.normalized(self.interaction, "joint_user",
                               builder=lambda m: scale @ m)

    @cached_property
    def item_user_joint(self) -> sp.csr_matrix:
        """``Y^T`` scaled by ``1/(|N^Y_v| + |N^T_v|)`` per target item (Eq. 5)."""
        scale = self._joint_scale(self.item_degree_interaction, self.item_degree_relation)
        return self.normalized(self.interaction, "joint_item_t",
                               builder=lambda m: scale @ m.T.tocsr())

    @cached_property
    def item_relation_joint(self) -> sp.csr_matrix:
        """``T`` scaled by the same joint item normalizer (Eq. 5)."""
        scale = self._joint_scale(self.item_degree_interaction, self.item_degree_relation)
        return self.normalized(self.item_relation, "joint_item",
                               builder=lambda m: scale @ m)

    @cached_property
    def relation_item_mean(self) -> sp.csr_matrix:
        """``T^T`` scaled by ``1/|N_r|`` per relation node (Eq. 6)."""
        return self.normalized(self.item_relation, "row_t",
                               builder=lambda m: row_normalize(m.T.tocsr()))

    # ------------------------------------------------------------------
    # Baseline views
    # ------------------------------------------------------------------
    @cached_property
    def user_item_mean(self) -> sp.csr_matrix:
        """Row-normalized ``Y`` (plain mean over interacted items)."""
        return self.normalized(self.interaction, "row")

    @cached_property
    def item_user_mean(self) -> sp.csr_matrix:
        """Row-normalized ``Y^T``."""
        return self.normalized(self.interaction, "row_t",
                               builder=lambda m: row_normalize(m.T.tocsr()))

    @cached_property
    def social_mean(self) -> sp.csr_matrix:
        """Row-normalized ``S`` (mean over friends)."""
        return self.normalized(self.social, "row")

    @cached_property
    def social_sym(self) -> sp.csr_matrix:
        """Symmetric-normalized ``S``."""
        return self.normalized(self.social, "sym")

    @cached_property
    def social_self_loop_mean(self) -> sp.csr_matrix:
        """Row-normalized ``S + I`` — the τ recalibration operator (Eq. 9).

        The seed recomputed this inside ``DGNN.propagate_on`` on every
        minibatch; as a cached view it normalizes once per graph.
        """
        return self.normalized(self.social, "row_self_loop")

    @cached_property
    def item_relation_mean(self) -> sp.csr_matrix:
        """Row-normalized ``T``."""
        return self.normalized(self.item_relation, "row")

    @cached_property
    def item_context(self) -> sp.csr_matrix:
        """Item→item context operator through relation nodes (I-R-I).

        ``item_relation_mean @ relation_item_mean``: every item mixes the
        mean embedding of its relation nodes, each the mean over that
        relation's items.  NGCF/GCCF used to compose this privately per
        model instance; as a cached graph view it is built once and can
        be row/column-sliced by :class:`~repro.graph.sampling.SubgraphView`.
        """
        return self.normalized(
            self.item_relation, "item_context",
            builder=lambda m: (self.item_relation_mean
                               @ self.relation_item_mean).tocsr())

    @cached_property
    def bipartite_norm(self) -> sp.csr_matrix:
        """Symmetric-normalized joint user–item adjacency for CF baselines."""
        return self.normalized(self.interaction, "bipartite",
                               builder=bipartite_norm_adjacency)

    # ------------------------------------------------------------------
    # Meta-paths (HAN / HERec)
    # ------------------------------------------------------------------
    def metapath(self, name: str, binarize: bool = True) -> sp.csr_matrix:
        """Composite adjacency for a named meta-path.

        Supported names: ``"uu"`` (social), ``"uiu"`` (co-interaction),
        ``"iui"`` (co-consumption), ``"iri"`` (shared relation node).
        Diagonals are removed; ``binarize`` clips multiplicities to 1.
        """
        if name == "uu":
            matrix = self.social.copy()
        elif name == "uiu":
            matrix = (self.interaction @ self.interaction.T).tocsr()
        elif name == "iui":
            matrix = (self.interaction.T @ self.interaction).tocsr()
        elif name == "iri":
            matrix = (self.item_relation @ self.item_relation.T).tocsr()
        else:
            raise KeyError(f"unknown meta-path {name!r}")
        matrix = matrix.tolil()
        matrix.setdiag(0)
        matrix = matrix.tocsr()
        matrix.eliminate_zeros()
        if binarize and matrix.nnz:
            matrix.data[:] = 1.0
        return matrix

    # ------------------------------------------------------------------
    # Edge lists (attention-based models)
    # ------------------------------------------------------------------
    def edges(self, kind: str) -> EdgeSet:
        """Directed edge list for a relation type.

        ``kind`` is one of ``"social"`` (both directions), ``"ui"``
        (item→user message edges: src=item, dst=user), ``"iu"``
        (user→item), ``"ir"`` (relation→item), ``"ri"`` (item→relation).
        """
        if kind == "social":
            coo = self.social.tocoo()
            dtype = index_dtype_for(self.num_users)
            return EdgeSet(src=coo.col.astype(dtype),
                           dst=coo.row.astype(dtype), name=kind)
        if kind in ("ui", "iu"):
            coo = self.interaction.tocoo()
            users = coo.row.astype(index_dtype_for(self.num_users))
            items = coo.col.astype(index_dtype_for(self.num_items))
            if kind == "ui":
                return EdgeSet(src=items, dst=users, name=kind)
            return EdgeSet(src=users, dst=items, name=kind)
        if kind in ("ir", "ri"):
            coo = self.item_relation.tocoo()
            items = coo.row.astype(index_dtype_for(self.num_items))
            relations = coo.col.astype(index_dtype_for(self.num_relations))
            if kind == "ir":
                return EdgeSet(src=relations, dst=items, name=kind)
            return EdgeSet(src=items, dst=relations, name=kind)
        raise KeyError(f"unknown edge kind {kind!r}")

    @cached_property
    def num_edges(self) -> Dict[str, int]:
        """Edge counts per relation type (social counted directed)."""
        return {
            "interaction": int(self.interaction.nnz),
            "social": int(self.social.nnz),
            "item_relation": int(self.item_relation.nnz),
        }

    def social_neighbors(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style ``(indptr, indices)`` arrays of each user's friends."""
        csr = self.social.tocsr()
        return (csr.indptr.copy(),
                csr.indices.astype(index_dtype_for(self.num_users)))

    def __repr__(self) -> str:
        return (f"CollaborativeHeteroGraph(users={self.num_users}, items={self.num_items}, "
                f"relations={self.num_relations}, edges={self.num_edges})")
