"""Optimizers: plain SGD and Adam with decoupled L2 weight decay.

The paper optimizes with Adam (Section V-A4); SGD is provided for the
algorithm box (Alg. 1) and for tests that need predictable dynamics.

Optimizer state (momentum / first and second moments) is allocated with
``np.zeros_like(param.data)``, so it follows each parameter's dtype —
under the float32 precision policy (:mod:`repro.engine.precision`) the
whole optimizer state halves along with the parameters.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a flat parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update to all parameters with gradients."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with L2 weight decay added to the gradient."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update to all parameters with gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
