"""Optimizers: SGD and Adam, dense and row-sparse ("lazy") paths.

The paper optimizes with Adam (Section V-A4); SGD is provided for the
algorithm box (Alg. 1) and for tests that need predictable dynamics.

Both optimizers natively consume the row-sparse gradients
(:class:`repro.autograd.sparse.RowSparseGrad`) that minibatch training
produces for embedding tables, updating **only the touched rows** so the
step cost is O(batch) instead of O(graph):

* **Lazy SGD** — touched rows get the standard update; with weight decay
  and no momentum, skipped decay is caught up *exactly* via the
  multiplicative factor ``(1 - lr*wd)**skipped`` before the current
  step.  With momentum, the velocity of a re-touched row is decayed by
  ``momentum**elapsed`` for the steps it sat out (the standard lazy
  approximation: the skipped ``-lr*v`` position updates are dropped).
* **Lazy Adam** — TF LazyAdam semantics extended with *exact* per-row
  bias correction: each row carries its own step counter, so a row
  touched for the n-th time is corrected with ``1 - beta**n`` regardless
  of the global step.  Weight decay is caught up to first order by
  scaling the decay term with the number of optimizer steps elapsed
  since the row was last touched.
* ``sparse_mode="dense_correct"`` — Adam densifies each sparse gradient
  and runs the exact dense kernel.  Because a coalesced
  ``RowSparseGrad`` densifies bitwise-identically to the dense scatter,
  this mode reproduces the dense-Adam trajectory bit for bit; it exists
  as the correctness oracle for the lazy path.

Optimizer state (momentum / moments) is allocated with
``np.zeros_like(param.data)``, so it follows each parameter's dtype —
under the float32 precision policy (:mod:`repro.engine.precision`) the
whole optimizer state halves along with the parameters.  All state is
exposed via :meth:`Optimizer.state_dict` as a flat ``{name: ndarray}``
mapping for checkpointing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.autograd.sparse import RowSparseGrad
from repro.engine.precision import get_index_dtype
from repro.nn.module import Parameter

_SPARSE_MODES = ("lazy", "dense_correct")


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Row-sparse gradients participate without densifying: their squared
    sum equals the dense gradient's (untouched rows are zero), and
    clipping scales only the stored values.  Returns the pre-clip norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total_sq = 0.0
    for p in params:
        if isinstance(p.grad, RowSparseGrad):
            total_sq += p.grad.sq_sum()
        else:
            total_sq += float((p.grad ** 2).sum())
    total = float(np.sqrt(total_sq))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            if isinstance(param.grad, RowSparseGrad):
                param.grad.scale_(scale)
            else:
                param.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a flat parameter list.

    Subclasses call :meth:`_record_touched` once per :meth:`step` so
    callers (the trainer's :class:`TrainingHistory`) can observe what
    fraction of parameter rows each step actually updated.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.last_touched_rows: Optional[int] = None
        self.last_total_rows: Optional[int] = None

    def zero_grad(self) -> None:
        """Clear all parameter gradients (dense or row-sparse)."""
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Touched-row accounting
    # ------------------------------------------------------------------
    def _record_touched(self) -> None:
        """Tally rows the pending step updates (call before consuming grads)."""
        touched = total = 0
        for param in self.parameters:
            if param.grad is None:
                continue
            rows = param.data.shape[0] if param.data.ndim else 1
            total += rows
            if isinstance(param.grad, RowSparseGrad):
                touched += param.grad.nnz_rows
            else:
                touched += rows
        self.last_touched_rows = touched
        self.last_total_rows = total

    def touched_fraction(self) -> float:
        """Fraction of rows the last step updated (1.0 before any step)."""
        if not self.last_total_rows:
            return 1.0
        return self.last_touched_rows / self.last_total_rows

    # ------------------------------------------------------------------
    # Shared-memory training support
    # ------------------------------------------------------------------
    def materialize_lazy_state(self) -> None:
        """Pre-allocate any lazily created per-row state (no-op by default).

        The lazy optimizers normally allocate per-row counters on the
        first sparse touch of each parameter.  Multi-process hogwild
        training (:mod:`repro.train.parallel`) needs every state array
        to exist *before* the workers fork so it can live in shared
        memory; this hook forces the allocation, writing exactly the
        values the lazy path would have written on first touch.
        """

    def state_array_lists(self) -> List[List[Optional[np.ndarray]]]:
        """Live (not copied) per-parameter state arrays, as mutable lists.

        Each inner list is indexed by parameter position and owned by
        the optimizer; :class:`repro.train.parallel.SharedParamStore`
        swaps the entries for shared-memory views in place.  Subclasses
        return their moment/velocity/counter lists.
        """
        return []

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat ``{name: ndarray}`` snapshot of all optimizer state."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if state:
            raise KeyError(f"unexpected optimizer state keys: {sorted(state)}")


class SGD(Optimizer):
    """SGD with momentum and L2 decay; lazy row-sparse updates.

    A row-sparse gradient updates only its touched rows.  With weight
    decay and no momentum the update is *exact*: an untouched row under
    the dense schedule contracts by ``(1 - lr*wd)`` per step, so on
    re-touch the row first catches up multiplicatively for the steps it
    sat out.  With momentum, the velocity of a re-touched row is decayed
    by ``momentum**elapsed`` (the position updates the dense schedule
    would have applied from stale velocity are dropped — the standard
    lazy-momentum approximation).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        # Per-parameter step index of each row's last update; allocated
        # on first sparse touch (dense-only training never pays for it).
        self._row_last: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        """Apply one SGD update to all parameters with gradients."""
        self._record_touched()
        self._step_count += 1
        for i, (param, velocity) in enumerate(zip(self.parameters, self._velocity)):
            if param.grad is None:
                continue
            if isinstance(param.grad, RowSparseGrad):
                self._sparse_step(i, param, velocity, param.grad)
            else:
                self._dense_step(i, param, velocity, param.grad)

    def _dense_step(self, i: int, param: Parameter,
                    velocity: np.ndarray, grad: np.ndarray) -> None:
        if self._row_last[i] is not None:
            # A dense grad touches every row; keep lazy bookkeeping honest.
            self._catch_up(i, param, velocity, slice(None))
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity *= self.momentum
            velocity += grad
            grad = velocity
        param.data -= self.lr * grad
        if self._row_last[i] is not None:
            self._row_last[i][:] = self._step_count

    def _sparse_step(self, i: int, param: Parameter,
                     velocity: np.ndarray, grad: RowSparseGrad) -> None:
        rows, values = grad.rows, grad.values
        self._catch_up(i, param, velocity, rows)
        g = values
        if self.weight_decay:
            g = g + self.weight_decay * param.data[rows]
        if self.momentum:
            velocity[rows] = self.momentum * velocity[rows] + g
            g = velocity[rows]
        param.data[rows] -= self.lr * g
        if self._row_last[i] is None and (self.weight_decay or self.momentum):
            self._row_last[i] = np.zeros(param.data.shape[0],
                                         dtype=get_index_dtype())
        if self._row_last[i] is not None:
            self._row_last[i][rows] = self._step_count

    def _catch_up(self, i: int, param: Parameter,
                  velocity: np.ndarray, rows) -> None:
        """Apply the decay the selected rows missed while untouched."""
        row_last = self._row_last[i]
        if row_last is None:
            return
        skipped = (self._step_count - 1) - row_last[rows]
        if not np.any(skipped > 0):
            return
        trailing = (1,) * (param.data.ndim - 1)
        skipped = skipped.reshape((-1,) + trailing)
        if self.weight_decay and not self.momentum:
            param.data[rows] *= (1.0 - self.lr * self.weight_decay) ** skipped
        if self.momentum:
            velocity[rows] *= self.momentum ** skipped

    def materialize_lazy_state(self) -> None:
        """Allocate ``_row_last`` now, matching first-sparse-touch values.

        Only decay/momentum runs track last-touch steps; without either
        the sparse step never allocates, so neither does this.  Rows are
        stamped with the current step count — exactly what the lazy
        allocation assumes for rows never touched sparsely before.
        """
        if not (self.weight_decay or self.momentum):
            return
        for i, param in enumerate(self.parameters):
            if self._row_last[i] is None:
                self._row_last[i] = np.full(
                    param.data.shape[0] if param.data.ndim else 1,
                    self._step_count, dtype=get_index_dtype())

    def state_array_lists(self) -> List[List[Optional[np.ndarray]]]:
        return [self._velocity, self._row_last]

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {
            "step_count": np.asarray(self._step_count, dtype=np.int64)}
        for i, velocity in enumerate(self._velocity):
            state[f"velocity.{i}"] = velocity.copy()
            if self._row_last[i] is not None:
                state[f"row_last.{i}"] = self._row_last[i].copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._step_count = int(state["step_count"])
        for i in range(len(self.parameters)):
            np.copyto(self._velocity[i], state[f"velocity.{i}"])
            key = f"row_last.{i}"
            self._row_last[i] = (
                np.asarray(state[key], dtype=get_index_dtype()).copy()
                if key in state else None)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with L2 decay; lazy row-sparse updates.

    Dense gradients take the classic update with bias correction folded
    into the scalar step size, so no ``m_hat``/``v_hat`` temporaries are
    allocated::

        p -= (lr * sqrt(1-b2^t) / (1-b1^t)) * m / (sqrt(v) + eps*sqrt(1-b2^t))

    which is algebraically identical to ``lr * m_hat / (sqrt(v_hat) + eps)``.

    Row-sparse gradients follow ``sparse_mode``:

    * ``"lazy"`` (default) — update only touched rows.  Each row keeps
      its own step counter for **exact** bias correction (a row touched
      for the n-th time is corrected with ``1 - beta**n``), matching TF
      LazyAdam semantics.  Weight decay is caught up to first order: the
      decay term is scaled by the optimizer steps elapsed since the row
      was last touched.
    * ``"dense_correct"`` — densify and run the dense kernel; bitwise
      identical to dense Adam (the lazy path's correctness oracle).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, sparse_mode: str = "lazy"):
        super().__init__(parameters, lr)
        if sparse_mode not in _SPARSE_MODES:
            raise ValueError(f"sparse_mode must be one of {_SPARSE_MODES}, "
                             f"got {sparse_mode!r}")
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.sparse_mode = sparse_mode
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Lazily allocated per-row counters (lazy mode only): per-row
        # update counts for bias correction and the step index of the
        # last touch for weight-decay catch-up.
        self._row_steps: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._row_last: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        """Apply one Adam update to all parameters with gradients."""
        self._record_touched()
        self._step_count += 1
        for i, (param, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            grad = param.grad
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                if self.sparse_mode == "dense_correct":
                    self._dense_step(i, param, m, v, grad.to_dense())
                else:
                    self._lazy_step(i, param, m, v, grad)
            else:
                self._dense_step(i, param, m, v, grad)

    def _dense_step(self, i: int, param: Parameter, m: np.ndarray,
                    v: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        sqrt_bias2 = np.sqrt(bias2)
        scale = self.lr * sqrt_bias2 / bias1
        denom = np.sqrt(v)
        denom += self.eps * sqrt_bias2
        np.divide(m, denom, out=denom)
        denom *= scale
        param.data -= denom
        # A dense step advanced every row once: keep lazy counters exact
        # so mixed dense/sparse schedules stay correctly bias-corrected.
        if self._row_steps[i] is not None:
            self._row_steps[i] += 1
            self._row_last[i][:] = self._step_count

    def _lazy_step(self, i: int, param: Parameter, m: np.ndarray,
                   v: np.ndarray, grad: RowSparseGrad) -> None:
        rows, g = grad.rows, grad.values
        if self._row_steps[i] is None:
            num_rows = param.data.shape[0]
            # Rows all start at the global pre-step count so a lazy
            # optimizer taking over after dense steps stays corrected.
            self._row_steps[i] = np.full(num_rows, self._step_count - 1,
                                         dtype=get_index_dtype())
            self._row_last[i] = np.full(num_rows, self._step_count - 1,
                                        dtype=get_index_dtype())
        row_steps, row_last = self._row_steps[i], self._row_last[i]
        trailing = (1,) * (g.ndim - 1)
        if self.weight_decay:
            # First-order catch-up: fold the decay the row missed while
            # untouched into this step's decay term.
            elapsed = (self._step_count - row_last[rows]).reshape((-1,) + trailing)
            g = g + (self.weight_decay * elapsed) * param.data[rows]
        row_steps[rows] += 1
        row_last[rows] = self._step_count
        n = row_steps[rows].reshape((-1,) + trailing)
        m_rows = self.beta1 * m[rows] + (1.0 - self.beta1) * g
        v_rows = self.beta2 * v[rows] + (1.0 - self.beta2) * g * g
        m[rows] = m_rows
        v[rows] = v_rows
        bias1 = 1.0 - self.beta1 ** n
        bias2 = 1.0 - self.beta2 ** n
        sqrt_bias2 = np.sqrt(bias2)
        scale = self.lr * sqrt_bias2 / bias1
        param.data[rows] -= scale * m_rows / (np.sqrt(v_rows)
                                              + self.eps * sqrt_bias2)

    def materialize_lazy_state(self) -> None:
        """Allocate per-row step counters now, as first touch would.

        The lazy allocation stamps every row with the pre-step global
        count (all prior steps are assumed dense); doing it eagerly with
        the current count writes the identical values, so a materialized
        optimizer's trajectory is bitwise-unchanged.  ``dense_correct``
        mode never reads the counters and allocates nothing.
        """
        if self.sparse_mode != "lazy":
            return
        for i, param in enumerate(self.parameters):
            if self._row_steps[i] is None:
                num_rows = param.data.shape[0] if param.data.ndim else 1
                self._row_steps[i] = np.full(num_rows, self._step_count,
                                             dtype=get_index_dtype())
                self._row_last[i] = np.full(num_rows, self._step_count,
                                            dtype=get_index_dtype())

    def state_array_lists(self) -> List[List[Optional[np.ndarray]]]:
        return [self._m, self._v, self._row_steps, self._row_last]

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {
            "step_count": np.asarray(self._step_count, dtype=np.int64)}
        for i in range(len(self.parameters)):
            state[f"m.{i}"] = self._m[i].copy()
            state[f"v.{i}"] = self._v[i].copy()
            if self._row_steps[i] is not None:
                state[f"row_steps.{i}"] = self._row_steps[i].copy()
                state[f"row_last.{i}"] = self._row_last[i].copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._step_count = int(state["step_count"])
        for i in range(len(self.parameters)):
            np.copyto(self._m[i], state[f"m.{i}"])
            np.copyto(self._v[i], state[f"v.{i}"])
            steps_key, last_key = f"row_steps.{i}", f"row_last.{i}"
            if steps_key in state:
                self._row_steps[i] = np.asarray(
                    state[steps_key], dtype=get_index_dtype()).copy()
                self._row_last[i] = np.asarray(
                    state[last_key], dtype=get_index_dtype()).copy()
            else:
                self._row_steps[i] = None
                self._row_last[i] = None
