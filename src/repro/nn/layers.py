"""Common neural-network layers used across the recommenders."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine projection ``x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learned bias.
    rng:
        Generator for Xavier initialization; a default seeded generator is
        used if omitted (deterministic but shared, so prefer passing one).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        flat = x if x.ndim <= 2 else x.reshape((-1, self.in_features))
        out = ops.matmul(flat, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        if x.ndim > 2:
            out = out.reshape(x.shape[:-1] + (self.out_features,))
        return out


class Embedding(Module):
    """A learned lookup table of shape ``(num_embeddings, dim)``."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None, std: float = 0.1):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=std))

    def forward(self, indices) -> Tensor:
        return ops.gather_rows(self.weight, indices)

    def all(self) -> Tensor:
        """Return the full table as a tensor (for full-graph propagation)."""
        return self.weight


class LayerNorm(Module):
    """Layer normalization over the last dimension (Ba et al., 2016).

    Matches Eq. 7 of the paper: normalize, then apply learned scale
    ``omega_1`` and shift ``omega_2``.
    """

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.scale = Parameter(init.ones((dim,)))
        self.shift = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = ops.mean(x, axis=-1, keepdims=True)
        centered = ops.sub(x, mu)
        var = ops.mean(ops.mul(centered, centered), axis=-1, keepdims=True)
        normed = ops.div(centered, ops.sqrt(ops.add(var, Tensor(np.array(self.eps)))))
        return ops.add(ops.mul(normed, self.scale), self.shift)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.rate = float(rate)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, self._rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, modules: Sequence[Module]):
        super().__init__()
        self._seq = list(modules)
        for index, module in enumerate(self._seq):
            self._modules[str(index)] = module

    def forward(self, x: Tensor) -> Tensor:
        for module in self._seq:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._seq)
