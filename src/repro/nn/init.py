"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the repository is reproducible from a single seed.  Random draws
always consume the generator stream in float64 — so the same seed yields
the same weights (up to rounding) under either precision policy — and the
result is cast to the active engine dtype
(:func:`repro.engine.precision.get_dtype`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.engine.precision import get_dtype


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[-2] * receptive, shape[-1] * receptive


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_out(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_dtype(), copy=False)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan_in_out(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_dtype(), copy=False)


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.1) -> np.ndarray:
    """Zero-mean Gaussian initialization (embedding tables)."""
    return rng.normal(0.0, std, size=shape).astype(get_dtype(), copy=False)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=get_dtype())


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialization (LayerNorm scales)."""
    return np.ones(shape, dtype=get_dtype())
