"""Neural-network toolkit on top of :mod:`repro.autograd`.

Provides the module system (:class:`Module`, :class:`Parameter`), common
layers (:class:`Linear`, :class:`Embedding`, :class:`LayerNorm`,
:class:`Dropout`), weight initializers, and optimizers (:class:`SGD`,
:class:`Adam`).
"""

from repro.nn.module import Module, ModuleDict, ModuleList, Parameter
from repro.nn.layers import Linear, Embedding, LayerNorm, Dropout, Sequential
from repro.nn import init
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm

__all__ = [
    "Module",
    "Parameter",
    "ModuleDict",
    "ModuleList",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "init",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
]
