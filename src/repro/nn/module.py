"""Module system: parameter containers with recursive traversal.

Mirrors the familiar ``torch.nn.Module`` contract at the scale this
repository needs: attribute assignment auto-registers parameters and
submodules, ``parameters()`` walks the tree, and ``state_dict`` /
``load_state_dict`` serialize weights as plain numpy arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is always a trainable leaf."""

    def __init__(self, data, name=None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__``; those are discovered automatically.  ``__call__``
    dispatches to ``forward``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters in the module tree."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. :class:`Dropout`)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameters as numpy arrays."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters from a :meth:`state_dict` snapshot."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, values in state.items():
            param = params[name]
            if param.data.shape != values.shape:
                raise ValueError(f"shape mismatch for '{name}': "
                                 f"{param.data.shape} vs {values.shape}")
            param.data[...] = values


class ModuleList(Module):
    """An indexable container of submodules."""

    def __init__(self, modules=()):
        super().__init__()
        self._list: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._list)
        self._list.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)


class ModuleDict(Module):
    """A string-keyed container of submodules.

    Values assigned through ``__setitem__`` register in ``_modules`` under
    their key, so ``named_parameters`` yields dotted names like
    ``banks.social.weight`` — no more reaching into ``_modules`` by hand
    to register per-relation submodules.
    """

    def __init__(self, modules: Dict[str, Module] = None):
        super().__init__()
        for key, module in (modules or {}).items():
            self[key] = module

    def __setitem__(self, key: str, module: Module) -> None:
        if not isinstance(key, str):
            raise TypeError(f"ModuleDict keys must be str, got {type(key).__name__}")
        if not isinstance(module, Module):
            raise TypeError(f"ModuleDict values must be Module, got "
                            f"{type(module).__name__}")
        self._modules[key] = module

    def __getitem__(self, key: str) -> Module:
        return self._modules[key]

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def __iter__(self) -> Iterator[str]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def keys(self):
        return self._modules.keys()

    def values(self):
        return self._modules.values()

    def items(self):
        return self._modules.items()
