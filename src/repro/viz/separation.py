"""Quantitative scores for the Fig. 9 embedding visualization.

The paper's Fig. 9 claim is qualitative ("DGNN separates users better and
keeps items near their user").  These scores make it measurable:

* :func:`cluster_separation_score` — silhouette-style ratio of
  between-group to within-group distances for labelled points;
* :func:`user_item_affinity_score` — how much closer each user sits to
  their own interacted items than to other sampled items.
"""

from __future__ import annotations

import numpy as np


def cluster_separation_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over labelled points (in [-1, 1]).

    Higher means tighter, better-separated label groups.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("need at least two label groups")
    norms = (points ** 2).sum(axis=1)
    distances = np.sqrt(np.maximum(
        norms[:, None] + norms[None, :] - 2.0 * points @ points.T, 0.0))
    scores = np.zeros(len(points))
    for index in range(len(points)):
        same = labels == labels[index]
        same[index] = False
        if not same.any():
            continue
        within = distances[index][same].mean()
        between = min(distances[index][labels == other].mean()
                      for other in unique if other != labels[index])
        denominator = max(within, between)
        scores[index] = 0.0 if denominator == 0 else (between - within) / denominator
    return float(scores.mean())


def user_item_affinity_score(user_points: np.ndarray, item_points: np.ndarray,
                             ownership: np.ndarray,
                             seed: int = 0) -> float:
    """Mean margin between random-item and own-item distances.

    ``ownership[j]`` gives the owning user row for item row ``j``.
    Positive values mean items embed nearer their own user than chance.
    """
    user_points = np.asarray(user_points, dtype=np.float64)
    item_points = np.asarray(item_points, dtype=np.float64)
    ownership = np.asarray(ownership, dtype=np.int64)
    rng = np.random.default_rng(seed)
    own = np.linalg.norm(item_points - user_points[ownership], axis=1)
    shuffled = rng.permutation(len(user_points))[ownership % len(user_points)]
    other = np.linalg.norm(item_points - user_points[shuffled], axis=1)
    return float((other - own).mean())
