"""Dependency-free SVG chart rendering for the paper's figures.

matplotlib is unavailable offline, so this module writes standards-plain
SVG directly: grouped bar charts (Figs. 4, 5, 6), line charts (Figs. 7,
8) and scatter plots (Fig. 9, Fig. 10 colourings).  The geometry is kept
deliberately simple — linear scales, one axis pair, legend column — and
every public function returns the SVG text (and optionally writes it),
so tests can assert on structure without rasterizing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, os.PathLike]

# A colour-blind-friendly cycle (Okabe-Ito).
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#D55E00",
           "#CC79A7", "#56B4E9", "#F0E442", "#000000")


def _escape(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class _Canvas:
    """Minimal SVG assembly with a margin-aware data viewport."""

    def __init__(self, width: int, height: int, title: str = ""):
        self.width = width
        self.height = height
        self.margin = dict(left=62, right=150, top=36, bottom=46)
        self.parts: List[str] = []
        if title:
            self.parts.append(
                f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
                f'font-size="14" font-family="sans-serif" font-weight="bold">'
                f'{_escape(title)}</text>')

    @property
    def plot_box(self) -> Tuple[float, float, float, float]:
        """(x0, y0, x1, y1) of the data viewport in SVG coordinates."""
        return (self.margin["left"], self.margin["top"],
                self.width - self.margin["right"],
                self.height - self.margin["bottom"])

    def x_of(self, fraction: float) -> float:
        x0, _, x1, _ = self.plot_box
        return x0 + fraction * (x1 - x0)

    def y_of(self, fraction: float) -> float:
        _, y0, _, y1 = self.plot_box
        return y1 - fraction * (y1 - y0)  # SVG y grows downward

    def add(self, fragment: str) -> None:
        self.parts.append(fragment)

    def axes(self, y_label: str = "", x_label: str = "") -> None:
        x0, y0, x1, y1 = self.plot_box
        self.add(f'<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" '
                 'stroke="#333" stroke-width="1"/>')
        self.add(f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" '
                 'stroke="#333" stroke-width="1"/>')
        if x_label:
            self.add(f'<text x="{(x0 + x1) / 2:.1f}" y="{self.height - 8}" '
                     f'text-anchor="middle" font-size="11" '
                     f'font-family="sans-serif">{_escape(x_label)}</text>')
        if y_label:
            cx, cy = 16, (y0 + y1) / 2
            self.add(f'<text x="{cx}" y="{cy:.1f}" text-anchor="middle" '
                     f'font-size="11" font-family="sans-serif" '
                     f'transform="rotate(-90 {cx} {cy:.1f})">'
                     f'{_escape(y_label)}</text>')

    def y_ticks(self, low: float, high: float, count: int = 5) -> None:
        x0, _, _, _ = self.plot_box
        span = high - low if high > low else 1.0
        for index in range(count + 1):
            value = low + span * index / count
            y = self.y_of(index / count)
            self.add(f'<line x1="{x0 - 4}" y1="{y:.1f}" x2="{x0}" '
                     f'y2="{y:.1f}" stroke="#333"/>')
            self.add(f'<text x="{x0 - 8}" y="{y + 4:.1f}" text-anchor="end" '
                     f'font-size="10" font-family="sans-serif">{value:.3g}'
                     '</text>')

    def legend(self, labels: Sequence[str]) -> None:
        _, y0, x1, _ = self.plot_box
        for index, label in enumerate(labels):
            color = PALETTE[index % len(PALETTE)]
            y = y0 + 16 * index
            self.add(f'<rect x="{x1 + 12}" y="{y:.1f}" width="10" height="10" '
                     f'fill="{color}"/>')
            self.add(f'<text x="{x1 + 27}" y="{y + 9:.1f}" font-size="11" '
                     f'font-family="sans-serif">{_escape(label)}</text>')

    def render(self) -> str:
        body = "\n".join(self.parts)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'<rect width="100%" height="100%" fill="white"/>\n'
                f"{body}\n</svg>\n")


def _maybe_write(svg: str, path: Optional[PathLike]) -> str:
    if path is not None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(svg)
    return svg


def grouped_bar_chart(groups: Sequence[str], series: Dict[str, Sequence[float]],
                      title: str = "", y_label: str = "",
                      width: int = 640, height: int = 360,
                      path: Optional[PathLike] = None) -> str:
    """Bar chart with one bar per (group, series) pair (Figs. 4-6 layout).

    ``groups`` label the x axis clusters; ``series`` maps legend name to a
    value per group.
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(groups):
            raise ValueError(f"series {name!r} length != number of groups")
    top = max((max(values) for values in series.values()), default=1.0)
    top = top * 1.1 if top > 0 else 1.0

    canvas = _Canvas(width, height, title)
    canvas.axes(y_label=y_label)
    canvas.y_ticks(0.0, top)
    x0, _, x1, y1 = canvas.plot_box
    cluster_width = (x1 - x0) / max(len(groups), 1)
    bar_width = cluster_width * 0.8 / max(len(names), 1)
    for group_index, group in enumerate(groups):
        cluster_start = x0 + group_index * cluster_width + 0.1 * cluster_width
        for series_index, name in enumerate(names):
            value = series[name][group_index]
            bar_height = (y1 - canvas.margin["top"]) * (value / top)
            x = cluster_start + series_index * bar_width
            color = PALETTE[series_index % len(PALETTE)]
            canvas.add(f'<rect x="{x:.1f}" y="{y1 - bar_height:.1f}" '
                       f'width="{bar_width * 0.92:.1f}" '
                       f'height="{bar_height:.1f}" fill="{color}"/>')
        label_x = x0 + (group_index + 0.5) * cluster_width
        canvas.add(f'<text x="{label_x:.1f}" y="{y1 + 16}" '
                   f'text-anchor="middle" font-size="11" '
                   f'font-family="sans-serif">{_escape(group)}</text>')
    canvas.legend(names)
    return _maybe_write(canvas.render(), path)


def line_chart(x_values: Sequence[float], series: Dict[str, Sequence[float]],
               title: str = "", x_label: str = "", y_label: str = "",
               width: int = 640, height: int = 360,
               path: Optional[PathLike] = None) -> str:
    """Multi-series line chart (Figs. 7-8 layout)."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(f"series {name!r} length != number of x values")
    all_values = [v for values in series.values() for v in values]
    low = min(all_values, default=0.0)
    high = max(all_values, default=1.0)
    if high <= low:
        high = low + 1.0
    pad = 0.05 * (high - low)
    low, high = low - pad, high + pad
    x_low = min(x_values)
    x_high = max(x_values) if max(x_values) > x_low else x_low + 1.0

    canvas = _Canvas(width, height, title)
    canvas.axes(y_label=y_label, x_label=x_label)
    canvas.y_ticks(low, high)
    for series_index, name in enumerate(names):
        color = PALETTE[series_index % len(PALETTE)]
        points = []
        for x, y in zip(x_values, series[name]):
            fx = (x - x_low) / (x_high - x_low)
            fy = (y - low) / (high - low)
            points.append(f"{canvas.x_of(fx):.1f},{canvas.y_of(fy):.1f}")
        canvas.add(f'<polyline points="{" ".join(points)}" fill="none" '
                   f'stroke="{color}" stroke-width="2"/>')
        for point in points:
            px, py = point.split(",")
            canvas.add(f'<circle cx="{px}" cy="{py}" r="2.5" fill="{color}"/>')
    x0, _, x1, y1 = canvas.plot_box
    for x in (x_low, x_high):
        fx = (x - x_low) / (x_high - x_low)
        canvas.add(f'<text x="{canvas.x_of(fx):.1f}" y="{y1 + 16}" '
                   f'text-anchor="middle" font-size="10" '
                   f'font-family="sans-serif">{x:g}</text>')
    canvas.legend(names)
    return _maybe_write(canvas.render(), path)


def scatter_plot(points: Dict[str, Sequence[Tuple[float, float]]],
                 title: str = "", width: int = 520, height: int = 480,
                 colors: Optional[Dict[str, Sequence[str]]] = None,
                 marker_size: float = 4.0,
                 path: Optional[PathLike] = None) -> str:
    """Scatter plot of labelled point groups (Fig. 9 / Fig. 10 layout).

    ``colors`` optionally overrides the palette with an explicit colour
    per point (e.g. memory-attention RGB strings).
    """
    all_points = [p for group in points.values() for p in group]
    if not all_points:
        raise ValueError("scatter_plot needs at least one point")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_high = x_high if x_high > x_low else x_low + 1.0
    y_high = y_high if y_high > y_low else y_low + 1.0

    canvas = _Canvas(width, height, title)
    canvas.axes()
    for group_index, (name, group) in enumerate(points.items()):
        default_color = PALETTE[group_index % len(PALETTE)]
        group_colors = (colors or {}).get(name)
        for point_index, (x, y) in enumerate(group):
            fx = (x - x_low) / (x_high - x_low)
            fy = (y - y_low) / (y_high - y_low)
            color = (group_colors[point_index]
                     if group_colors is not None else default_color)
            canvas.add(f'<circle cx="{canvas.x_of(fx):.1f}" '
                       f'cy="{canvas.y_of(fy):.1f}" r="{marker_size}" '
                       f'fill="{color}" fill-opacity="0.8"/>')
    canvas.legend(list(points))
    return _maybe_write(canvas.render(), path)


def rgb_string(rgb: Sequence[float]) -> str:
    """Convert an RGB triple in [0, 1] to an SVG colour string."""
    r, g, b = (max(0, min(255, int(round(255 * float(c))))) for c in rgb)
    return f"rgb({r},{g},{b})"
