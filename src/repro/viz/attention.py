"""Memory-attention analysis for the Fig. 10 case study.

The paper visualizes each user's memory gate vector as an RGB colour and
observes that users linked by *social* ties share similar social-bank
gates while users linked by *co-interaction* share similar
interaction-bank gates.  These helpers compute both the colours and the
quantitative coherence statistics that make the claim checkable.
"""

from __future__ import annotations

import numpy as np


def attention_to_rgb(attention: np.ndarray, seed: int = 0) -> np.ndarray:
    """Project ``(n, M)`` attention vectors to ``(n, 3)`` RGB in [0, 1].

    Uses a fixed random linear map followed by min-max normalization —
    the deterministic analogue of the paper's learned self-discrimination
    colour mapping (nearby attention vectors get nearby colours).
    """
    attention = np.asarray(attention, dtype=np.float64)
    rng = np.random.default_rng(seed)
    projector = rng.normal(size=(attention.shape[1], 3))
    projected = attention @ projector
    low = projected.min(axis=0, keepdims=True)
    high = projected.max(axis=0, keepdims=True)
    span = np.where(high - low > 0, high - low, 1.0)
    return (projected - low) / span


def pairwise_attention_similarity(attention: np.ndarray,
                                  pairs: np.ndarray) -> float:
    """Mean cosine similarity of attention vectors across node pairs.

    ``pairs`` is an ``(m, 2)`` array of node index pairs (e.g. social
    edges).  Returns 0 for an empty pair set.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return 0.0
    attention = np.asarray(attention, dtype=np.float64)
    left = attention[pairs[:, 0]]
    right = attention[pairs[:, 1]]
    norms = np.linalg.norm(left, axis=1) * np.linalg.norm(right, axis=1)
    norms = np.where(norms > 0, norms, 1.0)
    return float(((left * right).sum(axis=1) / norms).mean())


def subgraph_attention_coherence(attention: np.ndarray, pairs: np.ndarray,
                                 num_random: int = 1000,
                                 seed: int = 0) -> dict:
    """Connected-pair vs random-pair attention similarity.

    Returns a dict with ``connected``, ``random`` and ``gap`` — a positive
    gap means nodes joined by the given relation hold more similar memory
    attention than chance, the Fig. 10 claim.
    """
    attention = np.asarray(attention, dtype=np.float64)
    rng = np.random.default_rng(seed)
    count = attention.shape[0]
    random_pairs = rng.integers(0, count, size=(num_random, 2))
    random_pairs = random_pairs[random_pairs[:, 0] != random_pairs[:, 1]]
    connected = pairwise_attention_similarity(attention, pairs)
    random_similarity = pairwise_attention_similarity(attention, random_pairs)
    return {
        "connected": connected,
        "random": random_similarity,
        "gap": connected - random_similarity,
    }
