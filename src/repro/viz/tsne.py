"""A compact t-SNE implementation (van der Maaten & Hinton, 2008).

Used for the Fig. 9 embedding visualization.  Implements the standard
algorithm: per-point perplexity calibration via binary search over the
Gaussian bandwidth, symmetrized affinities, Student-t low-dimensional
kernel, gradient descent with momentum and early exaggeration.  numpy
only; suitable for the few hundred points the case study projects.
"""

from __future__ import annotations

import numpy as np


def _pairwise_squared_distances(points: np.ndarray) -> np.ndarray:
    norms = (points ** 2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * points @ points.T
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _calibrate_affinities(distances: np.ndarray, perplexity: float,
                          tolerance: float = 1e-5, max_steps: int = 50) -> np.ndarray:
    """Binary-search each point's Gaussian bandwidth to the target entropy."""
    count = distances.shape[0]
    target_entropy = np.log(perplexity)
    affinities = np.zeros((count, count))
    for index in range(count):
        low, high = -np.inf, np.inf
        beta = 1.0
        row = distances[index].copy()
        row[index] = np.inf
        for _ in range(max_steps):
            kernel = np.exp(-row * beta)
            kernel[index] = 0.0
            total = kernel.sum()
            if total <= 0:
                kernel = np.ones(count)
                kernel[index] = 0.0
                total = kernel.sum()
            probabilities = kernel / total
            positive = probabilities[probabilities > 0]
            entropy = -(positive * np.log(positive)).sum()
            error = entropy - target_entropy
            if abs(error) < tolerance:
                break
            if error > 0:  # entropy too high -> sharpen
                low = beta
                beta = beta * 2.0 if high == np.inf else (beta + high) / 2.0
            else:
                high = beta
                beta = beta / 2.0 if low == -np.inf else (beta + low) / 2.0
        affinities[index] = probabilities
    return affinities


def tsne(points: np.ndarray, num_dims: int = 2, perplexity: float = 20.0,
         num_iterations: int = 400, learning_rate: float = 100.0,
         seed: int = 0) -> np.ndarray:
    """Project ``points`` to ``num_dims`` with t-SNE.

    Parameters
    ----------
    points:
        ``(n, d)`` array of embeddings.
    perplexity:
        Target neighbourhood size (clipped to ``(n - 1) / 3``).
    num_iterations:
        Gradient-descent steps (first quarter uses early exaggeration).
    """
    points = np.asarray(points, dtype=np.float64)
    count = points.shape[0]
    if count < 4:
        raise ValueError("t-SNE needs at least 4 points")
    perplexity = min(perplexity, (count - 1) / 3.0)
    rng = np.random.default_rng(seed)

    distances = _pairwise_squared_distances(points)
    conditional = _calibrate_affinities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * count)
    joint = np.maximum(joint, 1e-12)

    embedding = rng.normal(0.0, 1e-4, size=(count, num_dims))
    velocity = np.zeros_like(embedding)
    exaggeration_steps = num_iterations // 4

    for step in range(num_iterations):
        target = joint * 4.0 if step < exaggeration_steps else joint
        low_distances = _pairwise_squared_distances(embedding)
        kernel = 1.0 / (1.0 + low_distances)
        np.fill_diagonal(kernel, 0.0)
        low_joint = np.maximum(kernel / kernel.sum(), 1e-12)
        coefficient = (target - low_joint) * kernel
        gradient = 4.0 * ((np.diag(coefficient.sum(axis=1)) - coefficient) @ embedding)
        momentum = 0.5 if step < exaggeration_steps else 0.8
        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding -= embedding.mean(axis=0)
    return embedding
