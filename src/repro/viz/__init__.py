"""Visualization utilities: numpy t-SNE and memory-attention analysis."""

from repro.viz.tsne import tsne
from repro.viz.attention import (
    attention_to_rgb,
    pairwise_attention_similarity,
    subgraph_attention_coherence,
)
from repro.viz.separation import cluster_separation_score, user_item_affinity_score
from repro.viz.svgplot import grouped_bar_chart, line_chart, scatter_plot, rgb_string

__all__ = [
    "tsne",
    "attention_to_rgb",
    "pairwise_attention_similarity",
    "subgraph_attention_coherence",
    "cluster_separation_score",
    "user_item_affinity_score",
    "grouped_bar_chart",
    "line_chart",
    "scatter_plot",
    "rgb_string",
]
