"""DiffNet — neural social influence diffusion (Wu et al., SIGIR 2019).

The published model diffuses user embeddings through the social graph
layer by layer,

.. math::  h_u^{(l+1)} = \\text{mean}_{u' \\in N^S_u} h_{u'}^{(l)} + h_u^{(l)},

then forms the final user representation as the diffused embedding plus
the mean of the user's interacted items' embeddings.  Items keep their
free embeddings — the design choice the paper criticizes DiffNet for
(no item-side relational modeling), which Table II reflects.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.propagate import LayerStack
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Parameter


class DiffNet(Recommender):
    """Layer-wise social diffusion with interacted-item fusion."""

    name = "diffnet"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 2):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        # Per-layer fusion weights of the diffusion step.
        self.layer_weights = Parameter(
            init.xavier_uniform((self.num_layers, embed_dim, embed_dim), rng))
        self._stack = LayerStack(self.num_layers, combine="last")

    def _step_on(self, view, layer_index: int, diffused: Tensor) -> Tensor:
        social_mean = ops.spmm(view.social_mean, diffused)
        weight = self.layer_weights[np.int64(layer_index)]
        return ops.add(ops.leaky_relu(ops.matmul(social_mean, weight), 0.2),
                       diffused)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        items = self.item_embedding.all()
        diffused = self._stack.run(
            self.user_embedding.all(),
            lambda index, current: self._step_on(self.graph, index, current))
        interacted = ops.spmm(self.graph.user_item_mean, items)
        user_final = ops.add(diffused, interacted)
        return user_final, items

    def propagate_on(self, subgraph) -> Tuple[Tensor, Tensor]:
        """Sampled path: social diffusion over the sliced adjacencies."""
        view = subgraph.graph
        items = ops.gather_rows(self.item_embedding.weight, subgraph.item_ids)
        diffused = self._stack.run(
            ops.gather_rows(self.user_embedding.weight, subgraph.user_ids),
            lambda index, current: self._step_on(view, index, current))
        interacted = ops.spmm(view.user_item_mean, items)
        return ops.add(diffused, interacted), items
