"""HERec — Heterogeneous network Embedding for Recommendation
(Shi et al., TKDE 2018).

The published pipeline: (1) learn node embeddings per meta-path with
random-walk skip-gram, (2) fuse them with learned fusion functions,
(3) combine with matrix factorization for ranking.

Step (1) follows the published recipe: truncated random walks are sampled
on each meta-path graph (10 walks per node, length 40, window 5 — the
original's budget scaled to this data), skip-gram co-occurrence counts
are collected, and the embedding is the truncated SVD of the PPMI matrix
— the closed-form solution of skip-gram with negative sampling (Levy &
Goldberg, 2014).  Sampling noise from the finite walk budget is therefore
part of the model, exactly as in the original.  Steps (2) and (3) are the
published per-path learned fusion into final user/item factors, trained
jointly with BPR.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn.layers import Embedding, Linear


def _random_walks(matrix: sp.csr_matrix, num_walks: int, walk_length: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Vectorized truncated random walks on a (possibly weighted) graph.

    Returns ``(n * num_walks, walk_length)`` node-id paths.  Walks from
    isolated nodes stay in place (contributing only self co-occurrences,
    which PPMI ignores).
    """
    matrix = sp.csr_matrix(matrix)
    count = matrix.shape[0]
    current = np.tile(np.arange(count), num_walks)
    paths = np.empty((len(current), walk_length), dtype=np.int64)
    paths[:, 0] = current
    indptr, indices = matrix.indptr, matrix.indices
    degrees = np.diff(indptr)
    for step in range(1, walk_length):
        degree = degrees[current]
        movable = degree > 0
        offsets = (rng.random(len(current)) * degree).astype(np.int64)
        next_nodes = current.copy()
        moving = np.flatnonzero(movable)
        next_nodes[moving] = indices[indptr[current[moving]] + offsets[moving]]
        current = next_nodes
        paths[:, step] = current
    return paths


def _walk_embedding(matrix: sp.spmatrix, dim: int, seed: int,
                    num_walks: int = 10, walk_length: int = 40,
                    window: int = 5) -> np.ndarray:
    """Skip-gram-style embedding from sampled walks (PPMI + truncated SVD)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    count = matrix.shape[0]
    if count < 2 or matrix.nnz == 0:
        return np.zeros((count, dim))
    rng = np.random.default_rng(seed)
    paths = _random_walks(matrix, num_walks, walk_length, rng)

    rows, cols = [], []
    for offset in range(1, window + 1):
        left = paths[:, :-offset].reshape(-1)
        right = paths[:, offset:].reshape(-1)
        keep = left != right  # self pairs carry no signal
        rows.append(left[keep])
        cols.append(right[keep])
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    cooccurrence = sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(count, count))
    cooccurrence = (cooccurrence + cooccurrence.T).tocoo()

    total = cooccurrence.data.sum()
    if total == 0:
        return np.zeros((count, dim))
    row_sums = np.asarray(cooccurrence.sum(axis=1)).reshape(-1) + 1e-12
    pmi_values = np.log(
        cooccurrence.data * total
        / (row_sums[cooccurrence.row] * row_sums[cooccurrence.col]))
    positive = pmi_values > 0
    ppmi = sp.csr_matrix(
        (pmi_values[positive],
         (cooccurrence.row[positive], cooccurrence.col[positive])),
        shape=(count, count))

    rank = min(dim, count - 1)
    if rank < 1 or ppmi.nnz == 0:
        return np.zeros((count, dim))
    u, s, _ = spla.svds(ppmi, k=rank, random_state=seed)
    embedding = u * np.sqrt(np.maximum(s, 0.0))
    if rank < dim:
        embedding = np.pad(embedding, ((0, 0), (0, dim - rank)))
    return embedding


def _bipartite_walk_embedding(bipartite: sp.spmatrix, dim: int, seed: int,
                              num_walks: int = 10, walk_length: int = 40,
                              window: int = 5) -> np.ndarray:
    """Walk-based embedding of the left node set of a bipartite graph.

    Builds the square two-type graph ``[[0, B], [Bᵀ, 0]]`` (e.g. items and
    relation nodes), runs the same truncated walks as the homogeneous
    paths — so walks alternate item → relation → item, realizing the
    I-R-I meta-path without materializing its dense composite — and
    returns the PPMI/SVD embedding of the left (item) rows only.
    """
    bipartite = sp.csr_matrix(bipartite, dtype=np.float64)
    left, right = bipartite.shape
    square = sp.bmat([[None, bipartite], [bipartite.T, None]], format="csr")
    full = _walk_embedding(square, dim, seed, num_walks=num_walks,
                           walk_length=walk_length, window=window)
    return full[:left]


class HERec(Recommender):
    """Meta-path random-walk embeddings + learned fusion + MF."""

    name = "herec"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_walks: int = 10, walk_length: int = 40,
                 window: int = 5):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        # Pre-computed meta-path embeddings (constants during training,
        # as in the published two-stage pipeline).
        walk_kwargs = dict(num_walks=num_walks, walk_length=walk_length,
                           window=window)
        self._user_paths = Tensor(np.concatenate([
            _walk_embedding(graph.metapath("uu"), embed_dim, seed,
                            **walk_kwargs),
            _walk_embedding(graph.metapath("uiu"), embed_dim, seed + 1,
                            **walk_kwargs),
        ], axis=1))
        self._item_paths = Tensor(np.concatenate([
            _walk_embedding(graph.metapath("iui"), embed_dim, seed + 2,
                            **walk_kwargs),
            _bipartite_walk_embedding(graph.item_relation, embed_dim, seed + 3,
                                      **walk_kwargs),
        ], axis=1))
        self.user_fusion = Linear(2 * embed_dim, embed_dim, rng=rng)
        self.item_fusion = Linear(2 * embed_dim, embed_dim, rng=rng)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        user_final = ops.add(self.user_embedding.all(),
                             ops.tanh(self.user_fusion(self._user_paths)))
        item_final = ops.add(self.item_embedding.all(),
                             ops.tanh(self.item_fusion(self._item_paths)))
        return user_final, item_final
