"""DGCF — Disentangled Graph Collaborative Filtering (Wang et al., SIGIR 2020).

The published model splits every embedding into ``K`` intent chunks and
learns a per-edge, per-intent routing distribution by iterating:

1. propagate each intent chunk over the interaction graph weighted by the
   (softmax-normalized) intent scores of the edges;
2. update each edge's intent score with the agreement (inner product)
   between the user chunk and the propagated item chunk.

This implementation follows that routing loop exactly; the per-edge
intent logits live in numpy (they are re-derived from embeddings each
iteration, as in the paper, not free parameters) and the propagation is
expressed with per-intent weighted sparse adjacencies rebuilt every
routing step — which is also why DGCF is the slowest dense baseline in
Table IV.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.precision import as_index_array, get_dtype
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn.layers import Embedding


def _safe_inv_sqrt(degrees: np.ndarray) -> np.ndarray:
    """Elementwise ``deg**-0.5`` with zeros left at zero."""
    result = np.zeros_like(degrees, dtype=get_dtype())
    nonzero = degrees > 0
    result[nonzero] = degrees[nonzero] ** -0.5
    return result


class DGCF(Recommender):
    """Intent-aware routing over the interaction graph.

    Parameters
    ----------
    num_intents:
        Number of disentangled intent chunks ``K`` (embed_dim must be
        divisible by it).
    num_iterations:
        Routing iterations per layer.
    """

    name = "dgcf"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_intents: int = 4, num_layers: int = 2,
                 num_iterations: int = 2):
        super().__init__(graph, embed_dim, seed)
        if embed_dim % num_intents:
            raise ValueError("embed_dim must be divisible by num_intents")
        rng = np.random.default_rng(seed)
        self.num_intents = int(num_intents)
        self.num_layers = int(num_layers)
        self.num_iterations = int(num_iterations)
        self.chunk = embed_dim // num_intents
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        coo = graph.interaction.tocoo()
        self._edge_users = as_index_array(coo.row, graph.num_users)
        self._edge_items = as_index_array(coo.col, graph.num_items)

    def _intent_adjacencies(self, logits: np.ndarray) -> List[Tuple[sp.csr_matrix, sp.csr_matrix]]:
        """Per-intent normalized adjacencies from the routing logits.

        ``logits`` is ``(num_edges, K)``; scores are softmaxed across
        intents per edge, then symmetrically degree-normalized per intent.
        """
        scores = np.exp(logits - logits.max(axis=1, keepdims=True))
        scores = scores / scores.sum(axis=1, keepdims=True)
        adjacencies = []
        shape_ui = (self.graph.num_users, self.graph.num_items)
        for intent in range(self.num_intents):
            values = scores[:, intent]
            matrix = sp.csr_matrix((values, (self._edge_users, self._edge_items)),
                                   shape=shape_ui)
            user_deg = np.asarray(matrix.sum(axis=1)).reshape(-1)
            item_deg = np.asarray(matrix.sum(axis=0)).reshape(-1)
            user_scale = sp.diags(_safe_inv_sqrt(user_deg))
            item_scale = sp.diags(_safe_inv_sqrt(item_deg))
            normalized = (user_scale @ matrix @ item_scale).tocsr()
            adjacencies.append((normalized, normalized.T.tocsr()))
        return adjacencies

    def propagate(self) -> Tuple[Tensor, Tensor]:
        users = self.user_embedding.all()
        items = self.item_embedding.all()
        user_chunks = [users[:, np.arange(i * self.chunk, (i + 1) * self.chunk)]
                       for i in range(self.num_intents)]
        item_chunks = [items[:, np.arange(i * self.chunk, (i + 1) * self.chunk)]
                       for i in range(self.num_intents)]
        user_out = [chunk for chunk in user_chunks]
        item_out = [chunk for chunk in item_chunks]

        for _ in range(self.num_layers):
            logits = np.zeros((len(self._edge_users), self.num_intents),
                              dtype=get_dtype())
            new_users = user_chunks
            new_items = item_chunks
            for _ in range(self.num_iterations):
                adjacencies = self._intent_adjacencies(logits)
                new_users, new_items = [], []
                for intent, (adj_ui, adj_iu) in enumerate(adjacencies):
                    new_users.append(ops.spmm(adj_ui, item_chunks[intent]))
                    new_items.append(ops.spmm(adj_iu, user_chunks[intent]))
                    # Routing update: agreement between connected chunks.
                    agreement = np.sum(
                        new_users[intent].data[self._edge_users]
                        * np.tanh(item_chunks[intent].data[self._edge_items]), axis=1)
                    logits[:, intent] += agreement
            user_chunks = new_users
            item_chunks = new_items
            user_out = [ops.add(total, chunk)
                        for total, chunk in zip(user_out, user_chunks)]
            item_out = [ops.add(total, chunk)
                        for total, chunk in zip(item_out, item_chunks)]

        scale = Tensor(np.array(1.0 / (self.num_layers + 1)))
        user_final = ops.mul(ops.cat(user_out, axis=1), scale)
        item_final = ops.mul(ops.cat(item_out, axis=1), scale)
        return user_final, item_final
