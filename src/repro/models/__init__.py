"""Recommendation models: DGNN (the paper's contribution) and baselines.

Every model implements :class:`repro.models.base.Recommender`; use
:func:`repro.models.registry.create_model` / ``MODEL_REGISTRY`` to build
models by name, matching the names used in the paper's tables.
"""

from repro.models.base import Recommender
from repro.models.memory import MemoryBank
from repro.models.dgnn import DGNN
from repro.models.mf import BprMF, MostPopular
from repro.models.classic import SoRec, TrustMF
from repro.models import coldstart
from repro.models.registry import MODEL_REGISTRY, create_model, available_models

__all__ = [
    "Recommender",
    "MemoryBank",
    "DGNN",
    "BprMF",
    "MostPopular",
    "SoRec",
    "TrustMF",
    "coldstart",
    "MODEL_REGISTRY",
    "create_model",
    "available_models",
]
