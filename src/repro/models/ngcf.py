"""NGCF — Neural Graph Collaborative Filtering (Wang et al., SIGIR 2019).

Propagation over the symmetric-normalized user-item bipartite graph:

.. math::
   E^{(l+1)} = \\text{LeakyReLU}\\big((\\hat A + I) E^{(l)} W_1
               + (\\hat A E^{(l)}) \\odot E^{(l)} W_2\\big)

with the final representation being the concatenation of all layers —
exactly the published message-passing rule.  Per the paper's fair-
comparison note, the graph-CF baselines also receive the side context:
the social graph and the item-relation graph are appended as extra
propagation channels with small fixed weight.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.propagate import LayerStack
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Module, ModuleList, Parameter


class _NgcfLayer(Module):
    """One NGCF propagation layer (W1: sum term, W2: affinity term)."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight_sum = Parameter(init.xavier_uniform((dim, dim), rng))
        self.weight_affinity = Parameter(init.xavier_uniform((dim, dim), rng))

    def forward(self, adjacency, embeddings: Tensor) -> Tensor:
        aggregated = ops.spmm(adjacency, embeddings)
        summed = ops.matmul(ops.add(aggregated, embeddings), self.weight_sum)
        affinity = ops.matmul(ops.mul(aggregated, embeddings), self.weight_affinity)
        return ops.leaky_relu(ops.add(summed, affinity), 0.2)


class NGCF(Recommender):
    """NGCF with social/item-relation context channels.

    Parameters
    ----------
    num_layers:
        Propagation depth (default 2, the paper's common setting).
    context_weight:
        Mixing weight of the social and item-relation context channels
        (0 recovers vanilla NGCF).
    """

    name = "ngcf"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 2, context_weight: float = 0.3):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.context_weight = float(context_weight)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self.layers = ModuleList([_NgcfLayer(embed_dim, rng)
                                  for _ in range(self.num_layers)])
        self._stack = LayerStack(self.num_layers, combine="concat")

    def minibatch_hops(self) -> int:
        """Exact depth: each layer is a bipartite hop *and* a context hop."""
        return 2 * max(self.num_layers, 1)

    def _step_on(self, view, layer_index: int, joint: Tensor) -> Tensor:
        joint = self.layers[layer_index](view.bipartite_norm, joint)
        if self.context_weight > 0:
            user_part = joint[np.arange(view.num_users)]
            item_part = joint[view.num_users + np.arange(view.num_items)]
            social = ops.spmm(view.social_mean, user_part)
            related = ops.spmm(view.item_context, item_part)
            context = ops.cat([social, related], axis=0)
            joint = ops.add(joint, ops.mul(Tensor(np.array(self.context_weight)),
                                           context))
        return joint

    def propagate(self) -> Tuple[Tensor, Tensor]:
        joint = ops.cat([self.user_embedding.all(), self.item_embedding.all()],
                        axis=0)
        final = self._stack.run(
            joint, lambda index, current: self._step_on(self.graph, index,
                                                        current))
        user_final = final[np.arange(self.graph.num_users)]
        item_final = final[self.graph.num_users + np.arange(self.graph.num_items)]
        return user_final, item_final

    def propagate_on(self, subgraph) -> Tuple[Tensor, Tensor]:
        """Sampled path: the same layer rule over the sliced adjacencies."""
        view = subgraph.graph
        joint = ops.cat([
            ops.gather_rows(self.user_embedding.weight, subgraph.user_ids),
            ops.gather_rows(self.item_embedding.weight, subgraph.item_ids)],
            axis=0)
        final = self._stack.run(
            joint, lambda index, current: self._step_on(view, index, current))
        user_final = final[np.arange(view.num_users)]
        item_final = final[view.num_users + np.arange(view.num_items)]
        return user_final, item_final
