"""EATNN — Efficient Adaptive Transfer Neural Network (Chen et al., SIGIR 2019).

EATNN shares knowledge between the *item domain* (interactions) and the
*social domain* (ties) through per-user adaptive transfer: every user has
a shared embedding plus two domain-specific embeddings, and a learned
per-user attention decides how much of the shared representation each
domain receives.  Training couples both domains: the BPR interaction loss
is augmented with a social proximity loss on the social-domain
representation (the transfer/multi-task part of the published model).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Parameter


class EATNN(Recommender):
    """Adaptive transfer between the interaction and social domains."""

    name = "eatnn"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, social_loss_weight: float = 0.2):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.social_loss_weight = float(social_loss_weight)
        self.shared_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_domain_embedding = Embedding(graph.num_users, embed_dim, rng=rng,
                                               std=0.05)
        self.social_domain_embedding = Embedding(graph.num_users, embed_dim, rng=rng,
                                                 std=0.05)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        # Per-domain transfer attention keys.
        self.transfer_keys = Parameter(init.xavier_uniform((embed_dim, 2), rng))
        self._social = graph.edges("social")
        self._social_rng = np.random.default_rng(seed + 1)

    def _domain_users(self) -> Tuple[Tensor, Tensor]:
        shared = self.shared_embedding.all()
        gates = ops.softmax(ops.matmul(shared, self.transfer_keys), axis=1)
        item_gate = ops.reshape(gates[:, np.int64(0)], (self.graph.num_users, 1))
        social_gate = ops.reshape(gates[:, np.int64(1)], (self.graph.num_users, 1))
        item_domain = ops.add(ops.mul(shared, item_gate),
                              self.item_domain_embedding.all())
        social_domain = ops.add(ops.mul(shared, social_gate),
                                self.social_domain_embedding.all())
        return item_domain, social_domain

    def propagate(self) -> Tuple[Tensor, Tensor]:
        item_domain, _ = self._domain_users()
        return item_domain, self.item_embedding.all()

    def bpr_loss(self, users, positives, negatives, l2: float = 1e-4) -> Tensor:
        """Interaction BPR plus the social-domain transfer loss."""
        self.invalidate_cache()
        item_domain, social_domain = self._domain_users()
        items = self.item_embedding.all()
        u = ops.gather_rows(item_domain, users)
        p = ops.gather_rows(items, positives)
        n = ops.gather_rows(items, negatives)
        pos_scores = ops.sum(ops.mul(u, p), axis=1)
        neg_scores = ops.sum(ops.mul(u, n), axis=1)
        loss = ops.neg(ops.mean(ops.log_sigmoid(ops.sub(pos_scores, neg_scores))))
        if l2 > 0:
            reg = ops.mean(ops.sum(u * u + p * p + n * n, axis=1))
            loss = ops.add(loss, ops.mul(Tensor(np.array(l2)), reg))
        if self.social_loss_weight > 0 and len(self._social):
            # Social proximity: tied users should be close in the social
            # domain, closer than a random pair (sampled per batch).
            edges = self._social
            sample = self._social_rng.integers(0, len(edges), size=min(len(users),
                                                                       len(edges)))
            src = edges.src[sample]
            dst = edges.dst[sample]
            rand = self._social_rng.integers(0, self.graph.num_users, size=len(sample))
            tie_scores = ops.sum(ops.mul(ops.gather_rows(social_domain, src),
                                         ops.gather_rows(social_domain, dst)), axis=1)
            rand_scores = ops.sum(ops.mul(ops.gather_rows(social_domain, src),
                                          ops.gather_rows(social_domain, rand)), axis=1)
            social_loss = ops.neg(ops.mean(
                ops.log_sigmoid(ops.sub(tie_scores, rand_scores))))
            loss = ops.add(loss, ops.mul(Tensor(np.array(self.social_loss_weight)),
                                         social_loss))
        return loss
