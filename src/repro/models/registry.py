"""Model registry: build any compared model by its paper-table name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender

_FACTORIES: Dict[str, Callable[..., Recommender]] = {}


def register(name: str) -> Callable:
    """Class decorator adding a model class to the registry under ``name``."""

    def wrap(cls):
        _FACTORIES[name] = cls
        cls.name = name
        return cls

    return wrap


def _populate() -> None:
    """Import all model modules so their classes self-register."""
    if _FACTORIES:
        return
    from repro.models import mf, dgnn  # noqa: F401
    from repro.models import ngcf, gccf, lightgcn  # noqa: F401
    from repro.models import diffnet, graphrec, samn, eatnn, dgrec, mhcn  # noqa: F401
    from repro.models import kgat, dgcf, disenhan, han, hgt, herec  # noqa: F401
    from repro.models import classic  # noqa: F401

    _FACTORIES.setdefault("dgnn", dgnn.DGNN)
    _FACTORIES.setdefault("bpr-mf", mf.BprMF)
    _FACTORIES.setdefault("most-popular", mf.MostPopular)
    _FACTORIES.setdefault("ngcf", ngcf.NGCF)
    _FACTORIES.setdefault("gccf", gccf.GCCF)
    _FACTORIES.setdefault("lightgcn", lightgcn.LightGCN)
    _FACTORIES.setdefault("diffnet", diffnet.DiffNet)
    _FACTORIES.setdefault("graphrec", graphrec.GraphRec)
    _FACTORIES.setdefault("samn", samn.SAMN)
    _FACTORIES.setdefault("eatnn", eatnn.EATNN)
    _FACTORIES.setdefault("dgrec", dgrec.DGRec)
    _FACTORIES.setdefault("mhcn", mhcn.MHCN)
    _FACTORIES.setdefault("kgat", kgat.KGAT)
    _FACTORIES.setdefault("dgcf", dgcf.DGCF)
    _FACTORIES.setdefault("disenhan", disenhan.DisenHAN)
    _FACTORIES.setdefault("han", han.HAN)
    _FACTORIES.setdefault("hgt", hgt.HGT)
    _FACTORIES.setdefault("herec", herec.HERec)
    _FACTORIES.setdefault("sorec", classic.SoRec)
    _FACTORIES.setdefault("trustmf", classic.TrustMF)


class _Registry(dict):
    """Lazy dict: populates the registry on first access."""

    def __getitem__(self, key):
        _populate()
        return _FACTORIES[key]

    def __contains__(self, key):
        _populate()
        return key in _FACTORIES

    def keys(self):
        _populate()
        return _FACTORIES.keys()

    def items(self):
        _populate()
        return _FACTORIES.items()


MODEL_REGISTRY = _Registry()

# Models appearing in Table II of the paper, in column order.
PAPER_TABLE2_MODELS = (
    "samn", "eatnn", "diffnet", "graphrec", "ngcf", "gccf", "dgrec",
    "kgat", "dgcf", "disenhan", "han", "hgt", "herec", "mhcn", "dgnn",
)


def available_models() -> List[str]:
    """Names of all registered models."""
    _populate()
    return sorted(_FACTORIES)


def create_model(name: str, graph: CollaborativeHeteroGraph,
                 embed_dim: int = 16, seed: int = 0, **kwargs) -> Recommender:
    """Instantiate a model by registry name."""
    _populate()
    if name not in _FACTORIES:
        raise KeyError(f"unknown model {name!r}; known: {available_models()}")
    return _FACTORIES[name](graph, embed_dim=embed_dim, seed=seed, **kwargs)
