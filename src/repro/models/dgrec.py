"""DGRec — session-based social recommendation (Song et al., WSDM 2019).

The published model encodes each user's *dynamic interest* with a
recurrent unit over their recent session and propagates it through a
graph attention network over friends.  The benchmark has no timestamps,
so the dynamic interest is encoded from the user's interaction sequence
(generation order) with exponential position decay — a documented
stand-in for the RNN that preserves the "recent items dominate" property
— followed by the published friend-level graph attention.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.precision import get_dtype
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Parameter


def _decay_weights(graph: CollaborativeHeteroGraph, decay: float) -> sp.csr_matrix:
    """User-item matrix with exponential position decay, row-normalized.

    The most recent interaction of each user (highest column position in
    insertion order) receives weight 1, the one before ``decay``, etc.
    """
    interaction = graph.interaction.tocsr()
    weights = interaction.copy().astype(get_dtype())
    for user in range(interaction.shape[0]):
        start, stop = interaction.indptr[user], interaction.indptr[user + 1]
        count = stop - start
        if count == 0:
            continue
        positions = np.arange(count)[::-1]  # newest gets exponent 0
        row = decay ** positions
        weights.data[start:stop] = row / row.sum()
    return weights


class DGRec(Recommender):
    """Decayed dynamic interest + graph attention over friends."""

    name = "dgrec"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, decay: float = 0.8):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self.interest_transform = Linear(embed_dim, embed_dim, rng=rng)
        self.attention_vector = Parameter(init.xavier_uniform((embed_dim,), rng))
        self._decayed = _decay_weights(graph, decay)
        self._social = graph.edges("social")

    def propagate(self) -> Tuple[Tensor, Tensor]:
        users = self.user_embedding.all()
        items = self.item_embedding.all()
        # Dynamic interest: decayed aggregation of the interaction sequence.
        interest = ops.tanh(self.interest_transform(ops.spmm(self._decayed, items)))
        combined = ops.add(users, interest)
        edges = self._social
        if len(edges) == 0:
            return combined, items
        # Graph attention over friends' interests.
        friend_interest = ops.gather_rows(combined, edges.src)
        own = ops.gather_rows(combined, edges.dst)
        scores = ops.matmul(ops.tanh(ops.mul(friend_interest, own)),
                            self.attention_vector)
        alpha = ops.segment_softmax(scores, edges.dst, self.graph.num_users)
        weighted = ops.mul(friend_interest, ops.reshape(alpha, (len(edges), 1)))
        social_interest = ops.segment_sum(weighted, edges.dst, self.graph.num_users)
        return ops.add(combined, social_interest), items
