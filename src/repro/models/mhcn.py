"""MHCN — Multi-channel Hypergraph Convolutional Network (Yu et al., WWW 2021).

The published model builds motif-induced hypergraph channels from the
social and interaction structure, runs LightGCN-style propagation per
channel, fuses channels with attention, and adds a self-supervised
mutual-information objective.  This implementation keeps all three
elements:

* **channels** — (1) social triangles (``S·S ∘ S``), (2) joint
  social+purchase motifs (``(Y·Yᵀ) ∘ S``), (3) plain purchase
  co-occurrence (``Y·Yᵀ``), each symmetric-normalized;
* **channel attention** fusing the per-channel user embeddings;
* **self-supervision** — a hierarchical MIM reduced to its core: channel
  embeddings of a user should agree with their channel-neighbourhood
  summary more than with a shuffled one (InfoNCE-style pairwise loss).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.adjcache import normalized
from repro.engine.propagate import LayerStack
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Parameter


def _motif_channels(graph: CollaborativeHeteroGraph) -> List[sp.csr_matrix]:
    """The three motif-induced user-user channel adjacencies."""
    social = graph.social.tocsr()
    interaction = graph.interaction.tocsr()
    co_purchase = (interaction @ interaction.T).tocsr()
    co_purchase.setdiag(0)
    co_purchase.eliminate_zeros()

    triangle = (social @ social).multiply(social)  # social triangles
    joint = co_purchase.multiply(social)           # friends with shared items
    channels = []
    for matrix in (triangle, joint, co_purchase):
        matrix = sp.csr_matrix(matrix)
        if matrix.nnz == 0:  # fall back to the raw social graph
            matrix = social.copy()
        channels.append(normalized(matrix, "sym"))
    return channels


class MHCN(Recommender):
    """Three motif channels + attention fusion + self-supervised MIM."""

    name = "mhcn"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 2, ssl_weight: float = 0.1):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.ssl_weight = float(ssl_weight)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self.channel_attention = Parameter(init.xavier_uniform((embed_dim, 3), rng))
        self._channels = _motif_channels(graph)
        self._ssl_rng = np.random.default_rng(seed + 7)
        self._stack = LayerStack(self.num_layers, combine="mean")

    def _channel_embeddings(self) -> List[Tensor]:
        users = self.user_embedding.all()
        return [
            self._stack.run(users,
                            lambda _, current: ops.spmm(channel, current))
            for channel in self._channels
        ]

    def propagate(self) -> Tuple[Tensor, Tensor]:
        channel_embs = self._channel_embeddings()
        base = self.user_embedding.all()
        # Attention over channels, queried by the base embedding.
        scores = ops.softmax(ops.matmul(base, self.channel_attention), axis=1)
        fused = None
        for index, channel_emb in enumerate(channel_embs):
            weight = ops.reshape(scores[:, np.int64(index)], (self.graph.num_users, 1))
            term = ops.mul(channel_emb, weight)
            fused = term if fused is None else ops.add(fused, term)
        # Items: LightGCN-style propagation through the interaction graph.
        items = self.item_embedding.all()
        item_agg = ops.spmm(self.graph.item_user_mean, fused)
        item_final = ops.add(items, item_agg)
        user_agg = ops.spmm(self.graph.user_item_mean, items)
        user_final = ops.add(fused, user_agg)
        return user_final, item_final

    def bpr_loss(self, users, positives, negatives, l2: float = 1e-4) -> Tensor:
        """BPR plus the channel-level self-supervised MIM term."""
        loss = super().bpr_loss(users, positives, negatives, l2=l2)
        if self.ssl_weight <= 0:
            return loss
        channel_embs = self._channel_embeddings()
        batch_users = np.asarray(users, dtype=np.int64)
        shuffled = self._ssl_rng.permutation(batch_users)
        ssl_terms = []
        for index, channel_emb in enumerate(channel_embs):
            summary = ops.spmm(self._channels[index], channel_emb)
            own = ops.sum(ops.mul(ops.gather_rows(channel_emb, batch_users),
                                  ops.gather_rows(summary, batch_users)), axis=1)
            other = ops.sum(ops.mul(ops.gather_rows(channel_emb, shuffled),
                                    ops.gather_rows(summary, batch_users)), axis=1)
            ssl_terms.append(ops.neg(ops.mean(ops.log_sigmoid(ops.sub(own, other)))))
        ssl_loss = ssl_terms[0]
        for term in ssl_terms[1:]:
            ssl_loss = ops.add(ssl_loss, term)
        return ops.add(loss, ops.mul(Tensor(np.array(self.ssl_weight / 3.0)), ssl_loss))
