"""KGAT — Knowledge Graph Attention Network (Wang et al., KDD 2019).

The collaborative knowledge graph here is the union of user-item
interactions and item-relation links (the paper's ``T`` acting as the
item knowledge graph).  Following the published design, each edge's
attention is the TransR-style plausibility

.. math::  \\pi(h, r, t) = (W_r e_t)^{\\top} \\tanh(W_r e_h + e_r)

normalized per head node, and propagation aggregates attention-weighted
neighbours with a bi-interaction combiner.  Relation embeddings cover
"interact" (user-item) plus one embedding per item relation node.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.precision import get_dtype
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Parameter


class KGAT(Recommender):
    """Attentive propagation over the collaborative knowledge graph."""

    name = "kgat"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 2):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        num_entities = graph.num_users + graph.num_items + graph.num_relations
        self.entity_embedding = Embedding(num_entities, embed_dim, rng=rng)
        # Edge-type embeddings: 0 = interact, 1 = item-relation link.
        self.relation_embedding = Embedding(2, embed_dim, rng=rng)
        self.relation_transform = Parameter(
            init.xavier_uniform((2, embed_dim, embed_dim), rng))
        self.combine_sum = Linear(embed_dim, embed_dim, rng=rng)
        self.combine_mul = Linear(embed_dim, embed_dim, rng=rng)
        self._build_edges(graph)

    def _build_edges(self, graph: CollaborativeHeteroGraph) -> None:
        """Flatten the CKG into (head, tail, edge_type) arrays, both directions."""
        user_offset = 0
        item_offset = graph.num_users
        relation_offset = graph.num_users + graph.num_items
        ui = graph.edges("iu")  # src=user, dst=item
        ir = graph.edges("ri")  # src=item, dst=relation
        heads = np.concatenate([
            ui.src + user_offset, ui.dst + item_offset,
            ir.src + item_offset, ir.dst + relation_offset,
        ])
        tails = np.concatenate([
            ui.dst + item_offset, ui.src + user_offset,
            ir.dst + relation_offset, ir.src + item_offset,
        ])
        types = np.concatenate([
            np.zeros(2 * len(ui), dtype=np.int64),
            np.ones(2 * len(ir), dtype=np.int64),
        ])
        self._heads, self._tails, self._types = heads, tails, types
        self._num_entities = relation_offset + graph.num_relations

    def _attentive_pass(self, entities: Tensor) -> Tensor:
        heads, tails, types = self._heads, self._tails, self._types
        head_emb = ops.gather_rows(entities, heads)
        tail_emb = ops.gather_rows(entities, tails)
        relation_emb = ops.gather_rows(self.relation_embedding.all(), types)
        # TransR projections per edge type (two types -> two matmuls).
        projected_head = [ops.matmul(head_emb, self.relation_transform[np.int64(t)])
                          for t in (0, 1)]
        projected_tail = [ops.matmul(tail_emb, self.relation_transform[np.int64(t)])
                          for t in (0, 1)]
        type_mask = (types == 0).astype(get_dtype()).reshape(-1, 1)
        mask = Tensor(type_mask)
        inv_mask = Tensor(1.0 - type_mask)
        head_proj = ops.add(ops.mul(projected_head[0], mask),
                            ops.mul(projected_head[1], inv_mask))
        tail_proj = ops.add(ops.mul(projected_tail[0], mask),
                            ops.mul(projected_tail[1], inv_mask))
        scores = ops.sum(ops.mul(tail_proj,
                                 ops.tanh(ops.add(head_proj, relation_emb))), axis=1)
        alpha = ops.segment_softmax(scores, heads, self._num_entities)
        weighted = ops.mul(tail_emb, ops.reshape(alpha, (len(heads), 1)))
        return ops.segment_sum(weighted, heads, self._num_entities)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        entities = self.entity_embedding.all()
        outputs = [entities]
        current = entities
        for _ in range(self.num_layers):
            neighbours = self._attentive_pass(current)
            summed = ops.leaky_relu(self.combine_sum(ops.add(current, neighbours)), 0.2)
            multiplied = ops.leaky_relu(
                self.combine_mul(ops.mul(current, neighbours)), 0.2)
            current = ops.add(summed, multiplied)
            outputs.append(current)
        final = ops.cat(outputs, axis=1)
        users = final[np.arange(self.graph.num_users)]
        items = final[self.graph.num_users + np.arange(self.graph.num_items)]
        return users, items
