"""GraphRec — graph attention for social recommendation (Fan et al., WWW 2019).

GraphRec learns user representations from two attentive aggregations —
the *item space* (attention over interacted items) and the *social space*
(attention over friends) — and item representations from attention over
interacting users.  This implementation keeps the published two-space
attentive design with single-head additive attention computed per edge
and normalized with a segment softmax.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph, EdgeSet
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, Parameter


class _EdgeAttention(Module):
    """Additive edge attention: score = a · LeakyReLU(W[src || dst])."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.project = Linear(2 * dim, dim, rng=rng)
        self.attention = Parameter(init.xavier_uniform((dim,), rng))

    def forward(self, source: Tensor, target: Tensor, edges: EdgeSet,
                num_targets: int) -> Tensor:
        src_emb = ops.gather_rows(source, edges.src)
        dst_emb = ops.gather_rows(target, edges.dst)
        hidden = ops.leaky_relu(self.project(ops.cat([src_emb, dst_emb], axis=1)), 0.2)
        scores = ops.matmul(hidden, self.attention)
        alpha = ops.segment_softmax(scores, edges.dst, num_targets)
        weighted = ops.mul(src_emb, ops.reshape(alpha, (len(edges), 1)))
        return ops.segment_sum(weighted, edges.dst, num_targets)


class GraphRec(Recommender):
    """Two-space attentive aggregation for users, attentive items."""

    name = "graphrec"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self.item_space_attention = _EdgeAttention(embed_dim, rng)
        self.social_space_attention = _EdgeAttention(embed_dim, rng)
        self.user_space_attention = _EdgeAttention(embed_dim, rng)
        self.fuse = Linear(2 * embed_dim, embed_dim, rng=rng)
        self._edges_ui = graph.edges("ui")
        self._edges_social = graph.edges("social")
        self._edges_iu = graph.edges("iu")

    def propagate(self) -> Tuple[Tensor, Tensor]:
        users = self.user_embedding.all()
        items = self.item_embedding.all()
        # Item-space user model: attention over interacted items.
        item_space = self.item_space_attention(items, users, self._edges_ui,
                                               self.graph.num_users)
        # Social-space user model: attention over friends.
        social_space = self.social_space_attention(users, users, self._edges_social,
                                                   self.graph.num_users)
        fused = ops.leaky_relu(
            self.fuse(ops.cat([item_space, social_space], axis=1)), 0.2)
        user_final = ops.add(fused, users)
        # Item model: attention over interacting users.
        user_space = self.user_space_attention(users, items, self._edges_iu,
                                               self.graph.num_items)
        item_final = ops.add(user_space, items)
        return user_final, item_final
