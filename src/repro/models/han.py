"""HAN — Heterogeneous graph Attention Network (Wang et al., WWW 2019).

HAN encodes a heterogeneous graph through manually chosen meta-paths with
two attention levels: *node-level* attention inside each meta-path graph
and *semantic-level* attention across meta-paths.  Applied to the
collaborative heterogeneous graph as the paper describes (Section V-A2):

* user meta-paths — ``U-U`` (social) and ``U-I-U`` (co-interaction);
* item meta-paths — ``I-U-I`` (co-consumption) and ``I-R`` (relation
  bipartite; the two-hop ``I-R-I`` graph is equivalent up to relation-node
  mixing and far sparser to materialize).

Node-level attention is GAT-style additive attention over the meta-path
edges; semantic attention scores each meta-path embedding with a shared
query vector.  The reliance on these hand-picked meta-paths is exactly
the limitation the paper's analysis attributes to HAN.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph, EdgeSet
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, ModuleDict, Parameter


def _edge_set(matrix: sp.spmatrix, name: str) -> EdgeSet:
    coo = sp.coo_matrix(matrix)
    return EdgeSet(src=coo.col.astype(np.int64), dst=coo.row.astype(np.int64),
                   name=name)


class _NodeAttention(Module):
    """GAT-style node-level attention inside one meta-path graph."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.transform = Linear(dim, dim, bias=False, rng=rng)
        self.attention_src = Parameter(init.xavier_uniform((dim,), rng))
        self.attention_dst = Parameter(init.xavier_uniform((dim,), rng))

    def forward(self, source: Tensor, target: Tensor, edges: EdgeSet,
                num_targets: int) -> Tensor:
        if len(edges) == 0:
            return self.transform(target)
        src_emb = self.transform(ops.gather_rows(source, edges.src))
        dst_emb = self.transform(ops.gather_rows(target, edges.dst))
        scores = ops.leaky_relu(
            ops.add(ops.matmul(src_emb, self.attention_src),
                    ops.matmul(dst_emb, self.attention_dst)), 0.2)
        alpha = ops.segment_softmax(scores, edges.dst, num_targets)
        weighted = ops.mul(src_emb, ops.reshape(alpha, (len(edges), 1)))
        return ops.segment_sum(weighted, edges.dst, num_targets)


class _SemanticAttention(Module):
    """Semantic-level attention across meta-path embeddings."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.project = Linear(dim, dim, rng=rng)
        self.query = Parameter(init.xavier_uniform((dim,), rng))

    def forward(self, path_embeddings: List[Tensor]) -> Tensor:
        scores = []
        for emb in path_embeddings:
            score = ops.mean(ops.matmul(ops.tanh(self.project(emb)), self.query))
            scores.append(score)
        stacked = ops.stack(scores)
        weights = ops.softmax(stacked, axis=0)
        fused = None
        for index, emb in enumerate(path_embeddings):
            weight = weights[np.int64(index)]
            term = ops.mul(emb, weight)
            fused = term if fused is None else ops.add(fused, term)
        return fused


class HAN(Recommender):
    """Two-level attention over hand-picked meta-paths."""

    name = "han"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, max_metapath_edges: int = 40_000):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        # One node-level attention per meta-path, keyed by path name.
        self.path_attention = ModuleDict()
        for path in ("uu", "uiu", "iui", "ir"):
            self.path_attention[path] = _NodeAttention(embed_dim, rng)
        self.user_semantic = _SemanticAttention(embed_dim, rng)
        self.item_semantic = _SemanticAttention(embed_dim, rng)
        self._edges_uu = _edge_set(graph.social, "uu")
        self._edges_uiu = self._capped(graph.metapath("uiu"), max_metapath_edges,
                                       rng, "uiu")
        self._edges_iui = self._capped(graph.metapath("iui"), max_metapath_edges,
                                       rng, "iui")
        self._edges_ir = graph.edges("ir")  # relation -> item

    @staticmethod
    def _capped(matrix: sp.spmatrix, cap: int, rng: np.random.Generator,
                name: str) -> EdgeSet:
        """Subsample overly dense meta-path graphs to a fixed edge budget."""
        edges = _edge_set(matrix, name)
        if len(edges) <= cap:
            return edges
        keep = rng.choice(len(edges), size=cap, replace=False)
        return EdgeSet(src=edges.src[keep], dst=edges.dst[keep], name=name)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        users = self.user_embedding.all()
        items = self.item_embedding.all()
        user_paths = [
            self.path_attention["uu"](users, users, self._edges_uu,
                                      self.graph.num_users),
            self.path_attention["uiu"](users, users, self._edges_uiu,
                                       self.graph.num_users),
        ]
        item_paths = [
            self.path_attention["iui"](items, items, self._edges_iui,
                                       self.graph.num_items),
            self.path_attention["ir"](
                ops.spmm(self.graph.relation_item_mean, items), items,
                self._edges_ir, self.graph.num_items),
        ]
        user_final = ops.add(users, self.user_semantic(user_paths))
        item_final = ops.add(items, self.item_semantic(item_paths))
        # Ground the two sides in the interaction graph (HAN itself is
        # task-agnostic; recommendation needs the CF signal).
        user_final = ops.add(user_final,
                             ops.spmm(self.graph.user_item_mean, item_final))
        return user_final, item_final
