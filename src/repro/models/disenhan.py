"""DisenHAN — Disentangled Heterogeneous graph Attention Network
(Wang et al., CIKM 2020).

The published model disentangles each node's embedding into ``K`` aspect
subspaces and learns, per aspect, a *relation-level* attention deciding
how much each incoming relation (social / interaction / item-relation)
contributes — iteratively refined so different aspects specialize on
different relations.  This implementation keeps that structure: aspect
projections, per-aspect relation aggregation, and a routing-style
relation attention updated from the agreement between the aspect
embedding and each relation's aggregate.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Module, Parameter


class _AspectProjections(Module):
    """Per-aspect linear projections of one node type's embeddings."""

    def __init__(self, dim: int, num_aspects: int, rng: np.random.Generator):
        super().__init__()
        self.num_aspects = num_aspects
        self.weight = Parameter(init.xavier_uniform((num_aspects, dim, dim), rng))

    def forward(self, embeddings: Tensor) -> List[Tensor]:
        return [ops.leaky_relu(ops.matmul(embeddings, self.weight[np.int64(k)]), 0.2)
                for k in range(self.num_aspects)]


class DisenHAN(Recommender):
    """Aspect-disentangled relation-level attention.

    Parameters
    ----------
    num_aspects:
        Number of disentangled aspect subspaces ``K``.
    num_iterations:
        Relation-attention refinement iterations per propagation.
    """

    name = "disenhan"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_aspects: int = 4, num_iterations: int = 2):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_aspects = int(num_aspects)
        self.num_iterations = int(num_iterations)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self.relation_embedding = Embedding(graph.num_relations, embed_dim, rng=rng)
        self.user_aspects = _AspectProjections(embed_dim, self.num_aspects, rng)
        self.item_aspects = _AspectProjections(embed_dim, self.num_aspects, rng)

    @staticmethod
    def _routed_fusion(base: Tensor, relation_aggregates: List[Tensor],
                       num_iterations: int) -> Tensor:
        """Iterative relation-level attention for one aspect.

        Starts from uniform attention over the relations; each iteration
        re-weights them by agreement with the current fused embedding.
        """
        num_nodes = base.shape[0]
        logits = Tensor(np.zeros((num_nodes, len(relation_aggregates))))
        fused = base
        for _ in range(num_iterations):
            weights = ops.softmax(logits, axis=1)
            fused = base
            agreements = []
            for index, aggregate in enumerate(relation_aggregates):
                weight = ops.reshape(weights[:, np.int64(index)], (num_nodes, 1))
                fused = ops.add(fused, ops.mul(aggregate, weight))
                agreements.append(ops.sum(ops.mul(ops.tanh(fused),
                                                  ops.tanh(aggregate)),
                                          axis=1, keepdims=True))
            logits = ops.cat(agreements, axis=1)
        return fused

    def propagate(self) -> Tuple[Tensor, Tensor]:
        users = self.user_embedding.all()
        items = self.item_embedding.all()
        relations = self.relation_embedding.all()
        user_aspects = self.user_aspects(users)
        item_aspects = self.item_aspects(items)

        user_parts: List[Tensor] = []
        item_parts: List[Tensor] = []
        for aspect in range(self.num_aspects):
            user_social = ops.spmm(self.graph.social_mean, user_aspects[aspect])
            user_items = ops.spmm(self.graph.user_item_mean, item_aspects[aspect])
            user_parts.append(self._routed_fusion(
                user_aspects[aspect], [user_social, user_items],
                self.num_iterations))
            item_users = ops.spmm(self.graph.item_user_mean, user_aspects[aspect])
            item_relations = ops.spmm(self.graph.item_relation_mean, relations)
            item_parts.append(self._routed_fusion(
                item_aspects[aspect], [item_users, item_relations],
                self.num_iterations))

        scale = Tensor(np.array(1.0 / self.num_aspects))
        user_final = ops.add(users, ops.mul(_sum_tensors(user_parts), scale))
        item_final = ops.add(items, ops.mul(_sum_tensors(item_parts), scale))
        return user_final, item_final


def _sum_tensors(tensors: List[Tensor]) -> Tensor:
    total = tensors[0]
    for tensor in tensors[1:]:
        total = ops.add(total, tensor)
    return total
