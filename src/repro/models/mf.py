"""Matrix-factorization reference models.

:class:`BprMF` is the classic pairwise matrix factorization every graph
recommender builds on; :class:`MostPopular` is the non-personalized floor.
Neither appears in the paper's tables, but both anchor the synthetic
benchmark (every published model should beat them) and serve as fast
sanity baselines in tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn.layers import Embedding


class BprMF(Recommender):
    """BPR-optimized matrix factorization (Rendle et al., 2009)."""

    name = "bpr-mf"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        return self.user_embedding.all(), self.item_embedding.all()


class MostPopular(Recommender):
    """Rank items by training interaction count (no learned parameters).

    Implemented as fixed rank-1 embeddings: every user maps to ``[1]`` and
    each item to ``[popularity]``, so the shared dot-product scoring and
    evaluation stack apply unchanged.
    """

    name = "most-popular"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0):
        super().__init__(graph, embed_dim=1, seed=seed)
        popularity = np.asarray(graph.interaction.sum(axis=0)).reshape(-1, 1)
        self._user_emb = Tensor(np.ones((graph.num_users, 1)))
        self._item_emb = Tensor(popularity)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        return self._user_emb, self._item_emb

    def bpr_loss(self, users, positives, negatives, l2: float = 1e-4) -> Tensor:
        raise RuntimeError("MostPopular has no trainable parameters")
