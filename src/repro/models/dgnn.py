"""DGNN — the paper's Disentangled Graph Neural Network.

The model follows Section IV end to end:

1. **Inputs** (Eq. 1): user, item and relation-node embeddings on the
   collaborative heterogeneous graph.
2. **Memory-augmented propagation** (Eqs. 3–6): each relation type owns a
   :class:`~repro.models.memory.MemoryBank`; user updates combine the
   target-gated social message with the source-gated interaction message
   under the joint ``1/(|N^S|+|N^Y|)`` normalization (Eq. 4); item
   updates combine user and relation-node messages under
   ``1/(|N^Y|+|N^T|)`` (Eq. 5); relation nodes aggregate item gates
   (Eq. 6).
3. **Stabilization** (Eq. 7): LayerNorm with learned scale/shift inside a
   LeakyReLU, plus a memory-encoded self-loop.
4. **Cross-layer aggregation** (Eq. 8): concatenation of all layer
   outputs followed by LayerNorm.
5. **Social recalibration** (Eqs. 9–10): the scoring user vector is
   ``H*[u] + τ(H*[u])`` where ``τ`` averages the user's social
   neighbourhood (self included); folded into the returned user
   embeddings so the shared dot-product scorer applies.

Ablation switches map one-to-one onto the paper's variants:
``use_memory=False`` is "-M" (single shared transform per relation, no
gating), ``use_tau=False`` is "-τ", ``use_layernorm=False`` is "-LN", and
building the graph with ``use_social=False`` / ``use_item_relations=
False`` yields "-S" / "-T" / "-ST" (Fig. 5).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.propagate import LayerStack
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.models.memory import MemoryBank
from repro.nn.layers import Dropout, Embedding, LayerNorm
from repro.nn.module import Module, ModuleDict, ModuleList, Parameter
from repro.nn import init

_EDGE_TYPES = ("social", "user_from_item", "item_from_user", "item_from_relation",
               "relation_from_item", "self_user", "self_item", "self_relation")


class _PlainTransforms(Module):
    """The "-M" ablation: one shared linear transform per edge type."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        for edge_type in _EDGE_TYPES:
            setattr(self, f"weight_{edge_type}",
                    Parameter(init.xavier_uniform((dim, dim), rng)))

    def apply(self, edge_type: str, embeddings: Tensor) -> Tensor:
        return ops.matmul(embeddings, getattr(self, f"weight_{edge_type}"))


class _DgnnLayer(Module):
    """One propagation layer: Eqs. 3–7 for users, items and relation nodes."""

    def __init__(self, dim: int, num_memory_units: int, rng: np.random.Generator,
                 use_memory: bool, use_layernorm: bool, literal_eq4: bool = False,
                 message_dropout: float = 0.0):
        super().__init__()
        self.use_memory = use_memory
        self.use_layernorm = use_layernorm
        self.literal_eq4 = literal_eq4
        self.dropout = Dropout(message_dropout, rng=np.random.default_rng(
            int(rng.integers(0, 2**31))))
        if use_memory:
            self.banks = ModuleDict({
                edge_type: MemoryBank(dim, num_memory_units, rng)
                for edge_type in _EDGE_TYPES})
        else:
            self.plain = _PlainTransforms(dim, rng)
        self.norm_user = LayerNorm(dim)
        self.norm_item = LayerNorm(dim)
        self.norm_relation = LayerNorm(dim)

    # -- message builders ------------------------------------------------
    def _target_gated(self, edge_type: str, targets: Tensor, sources: Tensor,
                      adjacency: sp.spmatrix) -> Tensor:
        aggregated = ops.spmm(adjacency, sources)
        if self.use_memory:
            return self.banks[edge_type].encode_target_gated(targets, aggregated)
        return self.plain.apply(edge_type, aggregated)

    def _source_gated(self, edge_type: str, targets: Tensor, sources: Tensor,
                      adjacency: sp.spmatrix) -> Tensor:
        if self.use_memory:
            return self.banks[edge_type].encode_source_gated(targets, sources, adjacency)
        # Without memory units the source-gated form degrades to a plain
        # transform of the target scaled by its (normalized) in-degree.
        degree = np.asarray(adjacency.sum(axis=1))
        return ops.mul(self.plain.apply(edge_type, targets), Tensor(degree))

    def _self_loop(self, edge_type: str, embeddings: Tensor) -> Tensor:
        if self.use_memory:
            return self.banks[edge_type].encode_self(embeddings)
        return self.plain.apply(edge_type, embeddings)

    def _stabilize(self, aggregated: Tensor, previous: Tensor, norm: LayerNorm,
                   edge_type: str) -> Tensor:
        """Eq. 7: LeakyReLU(LayerNorm(message)) + memory self-propagation.

        Message dropout (training only) regularizes the aggregated message
        before normalization — the standard graph-recommender training
        detail (NGCF / LightGCN family release code).
        """
        aggregated = self.dropout(aggregated)
        activated = (ops.leaky_relu(norm(aggregated), 0.2) if self.use_layernorm
                     else ops.leaky_relu(aggregated, 0.2))
        return ops.add(activated, self._self_loop(edge_type, previous))

    # -- full layer --------------------------------------------------------
    def forward(self, graph: CollaborativeHeteroGraph, users: Tensor,
                items: Tensor, relations: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        # Users (Eq. 4): social message + interaction message under the
        # joint 1/(|N^S|+|N^Y|) normalization.  By default both use the
        # Eq. 3 form (target gates transform aggregated source
        # embeddings); ``literal_eq4`` reproduces the equation exactly as
        # printed, where aggregated item *gates* transform the user's own
        # embedding (see DESIGN.md §"Eq. 4 reading").
        if self.literal_eq4:
            interaction_message = self._source_gated(
                "user_from_item", users, items, graph.user_item_joint)
        else:
            interaction_message = self._target_gated(
                "user_from_item", users, items, graph.user_item_joint)
        user_message = ops.add(
            self._target_gated("social", users, users, graph.user_social_joint),
            interaction_message)

        # Items (Eq. 5): user messages + relation-node messages under the
        # joint 1/(|N^Y|+|N^T|) normalization.
        item_message = ops.add(
            self._target_gated("item_from_user", items, users, graph.item_user_joint),
            self._target_gated("item_from_relation", items, relations,
                               graph.item_relation_joint))

        # Relation nodes (Eq. 6): aggregated item messages, memory-gated.
        if self.literal_eq4:
            relation_message = self._source_gated(
                "relation_from_item", relations, items, graph.relation_item_mean)
        else:
            relation_message = self._target_gated(
                "relation_from_item", relations, items, graph.relation_item_mean)

        new_users = self._stabilize(user_message, users, self.norm_user, "self_user")
        new_items = self._stabilize(item_message, items, self.norm_item, "self_item")
        new_relations = self._stabilize(relation_message, relations,
                                        self.norm_relation, "self_relation")
        return new_users, new_items, new_relations


class DGNN(Recommender):
    """Disentangled Graph Neural Network (the paper's model).

    Parameters
    ----------
    graph:
        Collaborative heterogeneous graph built from the training split.
    embed_dim:
        Hidden dimensionality ``d`` (paper default 16).
    num_layers:
        Graph propagation depth ``L`` (paper default 2).
    num_memory_units:
        ``|M|`` per memory bank (paper default 8).
    use_memory / use_tau / use_layernorm:
        Ablation switches for "-M" / "-τ" / "-LN" (Fig. 4).
    """

    name = "dgnn"
    compile_safe = True  # bitwise replay parity asserted in tier-1 tests

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 2, num_memory_units: int = 8,
                 use_memory: bool = True, use_tau: bool = True,
                 use_layernorm: bool = True, literal_eq4: bool = False,
                 message_dropout: float = 0.1):
        super().__init__(graph, embed_dim, seed)
        if num_layers < 0:
            raise ValueError("num_layers must be >= 0")
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.num_memory_units = int(num_memory_units)
        self.use_memory = use_memory
        self.use_tau = use_tau
        self.use_layernorm = use_layernorm
        self.literal_eq4 = literal_eq4
        self.message_dropout = float(message_dropout)

        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self.relation_embedding = Embedding(graph.num_relations, embed_dim, rng=rng)
        self.layers = ModuleList([
            _DgnnLayer(embed_dim, num_memory_units, rng, use_memory, use_layernorm,
                       literal_eq4, message_dropout)
            for _ in range(self.num_layers)
        ])
        self.final_norm = LayerNorm(embed_dim * (self.num_layers + 1))

    # ------------------------------------------------------------------
    def _stack(self) -> LayerStack:
        """The Eq. 8 cross-layer aggregation as a shared LayerStack."""
        return LayerStack(
            self.num_layers, combine="concat", include_input=True,
            final_norm=self.final_norm if self.use_layernorm else None)

    def propagate_all(self) -> Tuple[Tensor, Tensor, Tensor]:
        """Run Eqs. 3–8; return final user / item / relation embeddings."""
        initial = (self.user_embedding.all(), self.item_embedding.all(),
                   self.relation_embedding.all())

        def step(layer_index, users, items, relations):
            return self.layers[layer_index](self.graph, users, items, relations)

        return self._stack().run(initial, step)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        """Final embeddings with τ folded into the user side (Eq. 10).

        τ (Eq. 9) is the row-normalized ``S + I`` average of a user's
        social neighbourhood including themselves — served as a cached
        graph view, so it is normalized once per run, not per call.
        """
        user_final, item_final, _ = self.propagate_all()
        if self.use_tau:
            recalibrated = ops.spmm(self.graph.social_self_loop_mean, user_final)
            user_final = ops.add(user_final, recalibrated)
        return user_final, item_final

    # ------------------------------------------------------------------
    # Minibatch (neighbour-sampled) training
    # ------------------------------------------------------------------
    def minibatch_hops(self) -> int:
        """Exact closure depth: one hop per layer, plus one for τ.

        The τ recalibration (Eq. 9) averages each batch user's social
        neighbourhood *after* the layer stack, so exactness needs those
        neighbours' full L-layer embeddings — one extra expansion round.
        """
        return self.num_layers + (1 if self.use_tau else 0)

    def propagate_on(self, subgraph) -> Tuple[Tensor, Tensor]:
        """Run the propagation on a sampled subgraph.

        ``subgraph`` is a :class:`repro.graph.sampling.SubgraphView`
        (parent-normalized slices — exact message weights) or a legacy
        :class:`~repro.graph.sampling.InducedSubgraph` (normalizers
        recomputed on induced degrees, the GraphSAGE-style
        approximation); the returned embeddings cover its local
        user/item rows and gradients scatter back into the global
        embedding tables.
        """
        initial = (
            ops.gather_rows(self.user_embedding.weight, subgraph.user_ids),
            ops.gather_rows(self.item_embedding.weight, subgraph.item_ids),
            self.relation_embedding.all())

        def step(layer_index, users, items, relations):
            return self.layers[layer_index](subgraph.graph, users, items,
                                            relations)

        user_final, item_final, _ = self._stack().run(initial, step)
        if self.use_tau:
            # Cached view: repeated propagation on the same subgraph (and
            # every full-graph call) normalizes (S + I) exactly once —
            # the seed re-ran row_normalize(add_self_loops(S)) per batch.
            tau_matrix = subgraph.graph.social_self_loop_mean
            user_final = ops.add(user_final, ops.spmm(tau_matrix, user_final))
        return user_final, item_final

    # ------------------------------------------------------------------
    # Introspection for the case studies (Figs. 9-10)
    # ------------------------------------------------------------------
    def memory_attention(self, edge_type: str, layer: int = -1) -> np.ndarray:
        """Gate vectors ``η`` of the given edge type's bank at one layer.

        Returns the ``(n, |M|)`` attention of the bank's *gating* nodes
        (users for ``"social"``, items for ``"user_from_item"``, ...),
        evaluated on the current final layer-input embeddings.  This is
        the quantity visualized in Fig. 10.
        """
        if not self.use_memory:
            raise RuntimeError("memory attention requires use_memory=True")
        if not len(self.layers):
            raise RuntimeError("memory attention requires at least one layer")
        bank: MemoryBank = self.layers[layer].banks[edge_type]
        user_final, item_final, relation_final = (
            tensor.data for tensor in self._layer_inputs(layer))
        # The gating side is the node set whose embeddings feed η for this
        # bank: the target for Eq. 3 (target-gated) banks, the source for
        # the literal Eq. 4 / Eq. 6 (source-gated) forms.
        gating_side = {
            "social": user_final,
            "user_from_item": item_final if self.literal_eq4 else user_final,
            "item_from_user": item_final,
            "item_from_relation": item_final,
            "relation_from_item": (item_final if self.literal_eq4
                                   else relation_final),
            "self_user": user_final,
            "self_item": item_final,
            "self_relation": relation_final,
        }[edge_type]
        return bank.gate_values(gating_side)

    def user_memory_attention(self, edge_type: str = "social",
                              layer: int = -1) -> np.ndarray:
        """User-side gate vectors for Fig. 10 (``social`` or ``self_user``)."""
        if edge_type not in ("social", "self_user"):
            raise ValueError("user-side attention exists for 'social'/'self_user'")
        return self.memory_attention(edge_type, layer)

    def _layer_inputs(self, layer: int) -> Tuple[Tensor, Tensor, Tensor]:
        """Embeddings entering ``layer`` (inference pass, no grad)."""
        from repro.autograd.tensor import no_grad

        layer = layer % max(len(self.layers), 1)
        with no_grad():
            users = self.user_embedding.all()
            items = self.item_embedding.all()
            relations = self.relation_embedding.all()
            for current in range(layer):
                users, items, relations = self.layers[current](
                    self.graph, users, items, relations)
        return users, items, relations
