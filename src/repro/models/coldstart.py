"""Cold-start inference — the paper's named future-work direction.

The conclusion of the paper singles out cold-start recommendation as the
next step for DGNN.  This module implements the natural zero-shot
mechanism the architecture already supports: a **new user with no
interaction history but known social ties** (or a new item with known
relation links) can be embedded by running the trained propagation
operators over their side relations only.

For a new user ``u`` with friend set ``F``:

* layer-0 state: the mean of the friends' trained layer-0 embeddings
  (the best available prior under social homophily);
* propagation: the trained social memory bank encodes the aggregated
  friend embeddings exactly as Eq. 4's social term does for known users;
* τ recalibration applies unchanged.

For a new item with relation nodes ``R``: the trained item-from-relation
bank encodes the aggregated relation-node embeddings (Eq. 5's second
term).

This is *inductive inference with frozen parameters* — no gradient steps
for the new entity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.eval.metrics import top_k_indices
from repro.models.dgnn import DGNN


def embed_cold_user(model: DGNN, friend_ids: Sequence[int]) -> np.ndarray:
    """Embedding for an unseen user defined only by social ties.

    Parameters
    ----------
    model:
        A trained :class:`DGNN`.
    friend_ids:
        Ids of existing users the new user trusts.

    Returns
    -------
    A vector in the model's final embedding space (τ included), directly
    comparable with ``model.final_embeddings()[1]`` item rows.
    """
    friend_ids = np.asarray(list(friend_ids), dtype=np.int64)
    if friend_ids.size == 0:
        raise ValueError("cold-start user needs at least one social tie")
    if friend_ids.min() < 0 or friend_ids.max() >= model.graph.num_users:
        raise ValueError("friend id out of range")

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            # Track the new user's state through every layer: start from
            # the friends' mean, then apply each layer's social bank with
            # the same mean aggregation Eq. 4 uses.
            users = model.user_embedding.all()
            items = model.item_embedding.all()
            relations = model.relation_embedding.all()
            state = Tensor(users.data[friend_ids].mean(axis=0, keepdims=True))
            layer_states = [state]
            for layer in model.layers:
                aggregated = Tensor(users.data[friend_ids].mean(axis=0,
                                                                keepdims=True))
                if model.use_memory:
                    message = layer.banks["social"].encode_target_gated(
                        state, aggregated)
                    self_loop = layer.banks["self_user"].encode_self(state)
                else:
                    message = layer.plain.apply("social", aggregated)
                    self_loop = layer.plain.apply("self_user", state)
                from repro.autograd import ops

                if layer.use_layernorm:
                    activated = ops.leaky_relu(layer.norm_user(message), 0.2)
                else:
                    activated = ops.leaky_relu(message, 0.2)
                state = ops.add(activated, self_loop)
                layer_states.append(state)
                users, items, relations = layer(model.graph, users, items,
                                                relations)

            from repro.autograd import ops

            concat = ops.cat(layer_states, axis=1)
            if model.use_layernorm:
                concat = model.final_norm(concat)
            final = concat.data[0]

            if model.use_tau:
                user_final, _ = model.propagate()
                tau = user_final.data[friend_ids].mean(axis=0) / 2.0
                # friends' final embeddings already include their own τ
                # doubling; halve to approximate the pre-τ average.
                final = final + tau
    finally:
        if was_training:
            model.train()
    return final


def embed_cold_item(model: DGNN, relation_ids: Sequence[int]) -> np.ndarray:
    """Embedding for an unseen item defined only by its relation nodes."""
    relation_ids = np.asarray(list(relation_ids), dtype=np.int64)
    if relation_ids.size == 0:
        raise ValueError("cold-start item needs at least one relation link")
    if relation_ids.min() < 0 or relation_ids.max() >= model.graph.num_relations:
        raise ValueError("relation id out of range")

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            from repro.autograd import ops

            users = model.user_embedding.all()
            items = model.item_embedding.all()
            relations = model.relation_embedding.all()
            state = Tensor(relations.data[relation_ids].mean(axis=0,
                                                             keepdims=True))
            layer_states = [state]
            for layer in model.layers:
                aggregated = Tensor(relations.data[relation_ids].mean(
                    axis=0, keepdims=True))
                if model.use_memory:
                    message = layer.banks["item_from_relation"].encode_target_gated(
                        state, aggregated)
                    self_loop = layer.banks["self_item"].encode_self(state)
                else:
                    message = layer.plain.apply("item_from_relation", aggregated)
                    self_loop = layer.plain.apply("self_item", state)
                if layer.use_layernorm:
                    activated = ops.leaky_relu(layer.norm_item(message), 0.2)
                else:
                    activated = ops.leaky_relu(message, 0.2)
                state = ops.add(activated, self_loop)
                layer_states.append(state)
                users, items, relations = layer(model.graph, users, items,
                                                relations)

            concat = ops.cat(layer_states, axis=1)
            if model.use_layernorm:
                concat = model.final_norm(concat)
            return concat.data[0]
    finally:
        if was_training:
            model.train()


def recommend_cold_user(model: DGNN, friend_ids: Sequence[int],
                        top_n: int = 10) -> np.ndarray:
    """Top-N item ids for a brand-new user known only through friends."""
    user_vector = embed_cold_user(model, friend_ids)
    _, item_emb = model.final_embeddings()
    scores = item_emb @ user_vector
    return top_k_indices(scores, top_n)
