"""GCCF — linear residual graph collaborative filtering (Chen et al., AAAI 2020).

The published simplification of NGCF: the non-linear activation and the
feature transformations are removed, leaving linear residual propagation

.. math::  E^{(l+1)} = \\hat A E^{(l)} + E^{(l)}

with the layer outputs concatenated for prediction.  As with the other
graph-CF baselines, the social and item-relation graphs are mixed in as
context channels for fair comparison on the heterogeneous benchmark.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn.layers import Embedding


class GCCF(Recommender):
    """Linear residual GCN collaborative filtering with context channels."""

    name = "gccf"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 2, context_weight: float = 0.3):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.context_weight = float(context_weight)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        users = self.user_embedding.all()
        items = self.item_embedding.all()
        joint = ops.cat([users, items], axis=0)
        outputs: List[Tensor] = [joint]
        user_index = np.arange(self.graph.num_users)
        item_index = self.graph.num_users + np.arange(self.graph.num_items)
        for _ in range(self.num_layers):
            propagated = ops.spmm(self.graph.bipartite_norm, joint)
            joint = ops.add(propagated, joint)  # linear residual, no activation
            if self.context_weight > 0:
                social = ops.spmm(self.graph.social_mean, joint[user_index])
                related = ops.spmm(self.graph.item_context, joint[item_index])
                context = ops.cat([social, related], axis=0)
                joint = ops.add(joint, ops.mul(Tensor(np.array(self.context_weight)),
                                               context))
            outputs.append(joint)
        final = ops.cat(outputs, axis=1)
        return final[user_index], final[item_index]
