"""LightGCN (He et al., SIGIR 2020) — parameter-free propagation baseline.

Included as the strongest plain graph-CF reference (cited as [16] in the
paper): embeddings are propagated over the symmetric-normalized bipartite
graph with no transforms or nonlinearities, and the final representation
is the mean of all layer outputs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.engine.propagate import LayerStack
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn.layers import Embedding


class LightGCN(Recommender):
    """LightGCN: mean of propagated embedding layers."""

    name = "lightgcn"
    compile_safe = True  # bitwise replay parity asserted in tier-1 tests

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 3):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self._stack = LayerStack(self.num_layers, combine="mean")

    def propagate(self) -> Tuple[Tensor, Tensor]:
        joint = ops.cat([self.user_embedding.all(), self.item_embedding.all()], axis=0)
        mean = self._stack.run(
            joint, lambda _, current: ops.spmm(self.graph.bipartite_norm, current))
        user_index = np.arange(self.graph.num_users)
        item_index = self.graph.num_users + np.arange(self.graph.num_items)
        return mean[user_index], mean[item_index]

    def propagate_on(self, subgraph) -> Tuple[Tensor, Tensor]:
        """Sampled path: identical stack over the sliced bipartite graph."""
        view = subgraph.graph
        joint = ops.cat([
            ops.gather_rows(self.user_embedding.weight, subgraph.user_ids),
            ops.gather_rows(self.item_embedding.weight, subgraph.item_ids)],
            axis=0)
        mean = self._stack.run(
            joint, lambda _, current: ops.spmm(view.bipartite_norm, current))
        user_index = np.arange(view.num_users)
        item_index = view.num_users + np.arange(view.num_items)
        return mean[user_index], mean[item_index]
