"""Memory-augmented relation-heterogeneity encoder (Eq. 3 of the paper).

A :class:`MemoryBank` owns, for one node/edge type, ``|M|`` memory units:
transformation matrices ``W¹_m ∈ R^{d×d}`` plus key vectors
``W²_m ∈ R^d`` and biases ``b_m`` used to compute per-node gates

.. math::  η(H[t], m) = σ(H[t]·W²_m + b_m), \\qquad σ = \\text{LeakyReLU}(0.2)

The encoded message is the gated mixture ``(Σ_m η_m W¹_m) H[s]``.  Two
usage patterns appear in the paper's aggregation equations and both are
provided:

* **target-gated** (Eq. 3 / social term of Eq. 4): the *target* node's
  gates select the transform applied to aggregated *source* embeddings;
* **source-gated** (interaction term of Eq. 4, Eq. 6): gates are computed
  on the *source* nodes, mean-aggregated to the target, and the mixture
  transforms the target's own embedding.

Both factor the per-edge transform out of the neighbour sum (the gates
are per-node, not per-edge), which is what makes DGNN cheaper than
HGT-style per-edge attention — the property behind Table IV.

The mixture itself runs through the fused ``memory_mixture`` backend
kernel (one graph node, hand-written backward) rather than the generic
five-op composition; :func:`set_fused_memory` switches back to the
unfused path, which is kept as the benchmark baseline and gradcheck
reference.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

_FUSED = True


def fused_memory_enabled() -> bool:
    """Whether :meth:`MemoryBank.mixture_transform` uses the fused kernel."""
    return _FUSED


def set_fused_memory(enabled: bool) -> bool:
    """Toggle the fused memory-mixture kernel globally; returns the value."""
    global _FUSED
    _FUSED = bool(enabled)
    return _FUSED


@contextlib.contextmanager
def use_fused_memory(enabled: bool) -> Iterator[bool]:
    """Temporarily force the fused (or unfused) mixture inside a block."""
    previous = fused_memory_enabled()
    set_fused_memory(enabled)
    try:
        yield enabled
    finally:
        set_fused_memory(previous)


class MemoryBank(Module):
    """One edge-type's set of disentangled memory units.

    Parameters
    ----------
    dim:
        Embedding dimensionality ``d``.
    num_units:
        Number of memory units ``|M|`` (the paper uses 8).
    rng:
        Generator for weight initialization.
    negative_slope:
        LeakyReLU slope for the gate activation (paper: 0.2).
    """

    def __init__(self, dim: int, num_units: int, rng: np.random.Generator,
                 negative_slope: float = 0.2):
        super().__init__()
        self.dim = int(dim)
        self.num_units = int(num_units)
        self.negative_slope = float(negative_slope)
        # W¹: (M, d, d) unit transforms; W²: (d, M) gate keys; b: (M,) biases.
        # The unit transforms are scaled by 1/|M| and the gate biases start
        # at 1 so the initial mixture (Σ_m η_m W¹_m) ≈ an average of Xavier
        # transforms: gates open at ~1 instead of ~0, which keeps early
        # messages at a healthy scale under the Eq. 7 LayerNorm (without
        # this, training starts from normalized noise and converges to a
        # visibly worse optimum).
        self.transforms = Parameter(
            init.xavier_uniform((self.num_units, self.dim, self.dim), rng)
            / self.num_units)
        self.keys = Parameter(init.xavier_uniform((self.dim, self.num_units), rng))
        self.bias = Parameter(init.ones((self.num_units,)))

    # ------------------------------------------------------------------
    def gates(self, embeddings: Tensor) -> Tensor:
        """Per-node memory gates ``η`` — shape ``(n, |M|)`` (Eq. 3, line 2)."""
        return ops.leaky_relu(ops.add(ops.matmul(embeddings, self.keys), self.bias),
                              self.negative_slope)

    def mixture_transform(self, embeddings: Tensor, gates: Tensor) -> Tensor:
        """Apply the gated mixture ``(Σ_m gates_m W¹_m)`` to ``embeddings``.

        ``embeddings`` is ``(n, d)`` and ``gates`` is ``(n, |M|)``; the
        result is ``(n, d)``.  Dispatched as the fused ``memory_mixture``
        backend kernel — one autograd node, no ``(n, |M|, d)``
        temporaries — unless :func:`set_fused_memory` has switched the
        module back to the generic five-op composition.
        """
        if fused_memory_enabled():
            return ops.memory_mixture(embeddings, gates, self.transforms)
        return self._mixture_transform_unfused(embeddings, gates)

    def _mixture_transform_unfused(self, embeddings: Tensor,
                                   gates: Tensor) -> Tensor:
        """The original generic-op composition of the mixture.

        Kept as the benchmark baseline and the reference the fused kernel
        is gradchecked against: one matmul against the flattened unit
        transforms, then a gated reduction over the ``(n, |M|, d)``
        per-unit activations.
        """
        n = embeddings.shape[0]
        # (M, d, d) -> (d, M*d): unit transforms side by side.
        flat = ops.reshape(ops.transpose(self.transforms, (1, 0, 2)),
                           (self.dim, self.num_units * self.dim))
        per_unit = ops.reshape(ops.matmul(embeddings, flat),
                               (n, self.num_units, self.dim))
        weighted = ops.mul(per_unit, ops.reshape(gates, (n, self.num_units, 1)))
        return ops.sum(weighted, axis=1)

    # ------------------------------------------------------------------
    def encode_target_gated(self, target_embeddings: Tensor,
                            aggregated_sources: Tensor) -> Tensor:
        """Eq. 3: ``φ(H[t], ·)`` — target gates transform aggregated sources."""
        return self.mixture_transform(aggregated_sources,
                                      self.gates(target_embeddings))

    def encode_source_gated(self, target_embeddings: Tensor,
                            source_embeddings: Tensor,
                            adjacency: sp.spmatrix) -> Tensor:
        """Interaction term of Eq. 4 / Eq. 6: aggregated source gates
        transform the target's own embedding.

        ``adjacency`` maps sources to targets (``(n_targets, n_sources)``,
        already normalized); gates are computed per source node and
        aggregated through it.
        """
        aggregated_gates = ops.spmm(adjacency, self.gates(source_embeddings))
        return self.mixture_transform(target_embeddings, aggregated_gates)

    def encode_self(self, embeddings: Tensor) -> Tensor:
        """Self-propagation with the memory encoder (Eq. 7's ``φ(H[v])``)."""
        return self.mixture_transform(embeddings, self.gates(embeddings))

    def gate_values(self, embeddings: np.ndarray) -> np.ndarray:
        """Numpy gates for trained embeddings (Fig. 10 visualization)."""
        raw = embeddings @ self.keys.data + self.bias.data
        return np.where(raw > 0, raw, self.negative_slope * raw)
