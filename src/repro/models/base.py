"""Common interface for every recommender in the repository.

All models — DGNN and the 15 baselines — share one contract:
:meth:`Recommender.propagate` produces final user and item embedding
matrices, prediction is their dot product, and training minimizes the
pairwise BPR objective of Eq. 11.  Models whose published scoring rule is
not a plain dot product (e.g. DGNN's social recalibration ``τ``) fold the
extra terms into the final user embedding, which Eq. 10 shows is exactly
equivalent.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.engine.backends import get_backend
from repro.eval.metrics import top_k_indices
from repro.engine.propagate import bpr_terms
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.nn.module import Module


class Recommender(Module):
    """Base class: embedding-producing recommender trained with BPR.

    Parameters
    ----------
    graph:
        The collaborative heterogeneous graph built from the training
        split.
    embed_dim:
        Dimensionality ``d`` of the final embeddings.
    seed:
        Seed controlling weight initialization.
    """

    name = "base"

    #: Models verified bitwise-identical under the step compiler opt in
    #: by setting this True (see :mod:`repro.autograd.compile`).  The
    #: compiler falls back to eager on any unreplayable tape regardless,
    #: so the flag is a conservative allow-list, not a correctness gate.
    compile_safe = False

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0):
        super().__init__()
        self.graph = graph
        self.embed_dim = int(embed_dim)
        self.seed = int(seed)
        self._cached_embeddings: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # To implement in subclasses
    # ------------------------------------------------------------------
    def propagate(self) -> Tuple[Tensor, Tensor]:
        """Return final ``(user_embeddings, item_embeddings)`` tensors.

        Shapes are ``(num_users, d*)`` and ``(num_items, d*)`` with a
        shared ``d*`` (models may widen via layer concatenation).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Training objective (Eq. 11)
    # ------------------------------------------------------------------
    def bpr_loss(self, users: np.ndarray, positives: np.ndarray,
                 negatives: np.ndarray, l2: float = 1e-4) -> Tensor:
        """Pairwise BPR loss on a triple batch plus embedding L2.

        The math lives in :func:`repro.engine.propagate.bpr_terms`; this
        method owns only the model plumbing (cache invalidation and the
        forward propagation).  The regularizer is applied to the gathered
        final embeddings of the batch (the standard BPR practice); global
        weight decay can be added through the optimizer if desired.
        """
        self.invalidate_cache()
        user_emb, item_emb = self.propagate()
        return bpr_terms(user_emb, item_emb, users, positives, negatives, l2=l2)

    def supports_compile(self) -> bool:
        """Whether the step compiler may record/replay this model."""
        return bool(self.compile_safe)

    # ------------------------------------------------------------------
    # Minibatch (neighbour-sampled) training
    # ------------------------------------------------------------------
    def supports_minibatch(self) -> bool:
        """Whether the model implements the sampled propagation path."""
        return type(self).propagate_on is not Recommender.propagate_on

    def minibatch_hops(self) -> int:
        """Neighbourhood depth at which *uncapped* sampling is exact.

        The number of expansion rounds needed so that every node whose
        message reaches a batch row under :meth:`propagate` is inside
        the sampled closure.  The default — one hop per propagation
        layer — is right for single-edge-per-layer models; models whose
        layers traverse more than one edge (or that post-process with an
        extra aggregation, like DGNN's τ) override it.
        """
        return max(int(getattr(self, "num_layers", 1)), 1)

    def propagate_on(self, subgraph) -> Tuple[Tensor, Tensor]:
        """Run propagation on a sampled subgraph; local-row embeddings.

        ``subgraph`` is a :class:`repro.graph.sampling.SubgraphView` (the
        fast path — parent-normalized adjacency slices) or a legacy
        :class:`~repro.graph.sampling.InducedSubgraph`; either way the
        returned tensors cover its local user/item rows and gradients
        scatter back into the global embedding tables through the
        engine's ``gather_rows`` op.
        """
        raise NotImplementedError(
            f"{self.name} does not implement sampled propagation")

    def bpr_loss_on(self, subgraph, users: np.ndarray, positives: np.ndarray,
                    negatives: np.ndarray, l2: float = 1e-4) -> Tensor:
        """BPR loss evaluated on a prebuilt subgraph.

        The building block the prefetching pipeline uses: sampling and
        subgraph construction happen elsewhere (possibly on a worker
        thread), the compute step only propagates and scores.
        """
        self.invalidate_cache()
        user_emb, item_emb = self.propagate_on(subgraph)
        return bpr_terms(user_emb, item_emb,
                         subgraph.local_users(np.asarray(users, np.int64)),
                         subgraph.local_items(np.asarray(positives, np.int64)),
                         subgraph.local_items(np.asarray(negatives, np.int64)),
                         l2=l2)

    def bpr_loss_sampled(self, users: np.ndarray, positives: np.ndarray,
                         negatives: np.ndarray, l2: float = 1e-4,
                         hops: Optional[int] = None,
                         fanout: Optional[int] = 20,
                         seed: int = 0) -> Tensor:
        """BPR loss on the batch's sampled L-hop neighbourhood.

        A drop-in alternative to :meth:`bpr_loss` whose cost scales with
        the neighbourhood instead of the full graph.  ``hops`` defaults
        to :meth:`minibatch_hops` (exact closure depth); ``fanout`` caps
        sampled neighbours per node per relation (``None`` keeps all —
        with the default hops this reproduces the full-graph loss to
        dtype tolerance).
        """
        from repro.graph.sampling import sample_subgraph_view

        subgraph = sample_subgraph_view(
            self.graph, np.asarray(users, np.int64),
            np.concatenate([np.asarray(positives, np.int64),
                            np.asarray(negatives, np.int64)]),
            hops=self.minibatch_hops() if hops is None else hops,
            fanout=fanout, seed=seed)
        return self.bpr_loss_on(subgraph, users, positives, negatives, l2=l2)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        """Drop cached inference embeddings (call after parameter updates)."""
        self._cached_embeddings = None

    def final_embeddings(self) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy final embeddings, cached until :meth:`invalidate_cache`."""
        if self._cached_embeddings is None:
            was_training = self.training
            self.eval()
            with no_grad():
                user_emb, item_emb = self.propagate()
            self._cached_embeddings = (user_emb.data.copy(), item_emb.data.copy())
            if was_training:
                self.train()
        return self._cached_embeddings

    def score_candidates(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Dot-product scores for per-user candidate item lists.

        ``users`` is ``(n,)`` and ``items`` is ``(n, c)``; the result has
        shape ``(n, c)``.  Dispatched through the active backend's
        ``gathered_rowwise_dot`` kernel, so evaluation scoring shows up
        in kernel instrumentation alongside training.
        """
        user_emb, item_emb = self.final_embeddings()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        num_candidates = items.shape[1]
        flat = get_backend().gathered_rowwise_dot(
            user_emb, np.repeat(users, num_candidates),
            item_emb, items.reshape(-1))
        return flat.reshape(len(users), num_candidates)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Dot-product scores for aligned ``(user, item)`` arrays.

        Routed through the backend's ``gathered_rowwise_dot`` (same
        kernel the BPR loss uses) for instrumentation parity.
        """
        user_emb, item_emb = self.final_embeddings()
        return get_backend().gathered_rowwise_dot(
            user_emb, np.asarray(users, dtype=np.int64),
            item_emb, np.asarray(items, dtype=np.int64))

    def recommend(self, user: int, top_n: int = 10,
                  exclude_train: bool = True) -> np.ndarray:
        """Top-N item ids for one user, optionally masking training items."""
        user_emb, item_emb = self.final_embeddings()
        scores = item_emb @ user_emb[int(user)]
        if exclude_train:
            seen = self.graph.interaction[int(user)].indices
            scores = scores.copy()
            scores[seen] = -np.inf
        return top_k_indices(scores, top_n)
