"""SAMN — Social Attentional Memory Network (Chen et al., WSDM 2019).

SAMN's two published stages are kept:

1. **Attention-based memory module** — for each social tie the joint
   user–friend key addresses a shared memory of relation vectors,
   producing a relation-specific *friend vector* (rather than using the
   friend's raw embedding);
2. **Friend-level attention** — an attention over a user's friends
   weights those friend vectors into the social representation, which is
   added to the user's base embedding.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding
from repro.nn.module import Parameter


class SAMN(Recommender):
    """Attentional memory over social relations.

    Parameters
    ----------
    num_memories:
        Size of the shared relation-memory slab (paper default 8).
    """

    name = "samn"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_memories: int = 8):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_memories = int(num_memories)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        # Memory keys and slots of the attention-based memory module.
        self.memory_keys = Parameter(
            init.xavier_uniform((embed_dim, self.num_memories), rng))
        self.memory_slots = Parameter(
            init.xavier_uniform((self.num_memories, embed_dim), rng))
        # Friend-level attention vector.
        self.friend_attention = Parameter(init.xavier_uniform((embed_dim,), rng))
        self._social = graph.edges("social")

    def propagate(self) -> Tuple[Tensor, Tensor]:
        users = self.user_embedding.all()
        items = self.item_embedding.all()
        edges = self._social
        if len(edges) == 0:
            return users, items
        user_side = ops.gather_rows(users, edges.dst)
        friend_side = ops.gather_rows(users, edges.src)
        # Stage 1: joint key -> memory attention -> relation vector.
        joint_key = ops.mul(user_side, friend_side)
        memory_attention = ops.softmax(ops.matmul(joint_key, self.memory_keys), axis=1)
        relation_vectors = ops.matmul(memory_attention, self.memory_slots)
        friend_vectors = ops.mul(friend_side, relation_vectors)
        # Stage 2: friend-level attention per user.
        scores = ops.matmul(ops.tanh(friend_vectors), self.friend_attention)
        alpha = ops.segment_softmax(scores, edges.dst, self.graph.num_users)
        weighted = ops.mul(friend_vectors, ops.reshape(alpha, (len(edges), 1)))
        social_repr = ops.segment_sum(weighted, edges.dst, self.graph.num_users)
        return ops.add(users, social_repr), items
