"""Classical matrix-factorization social recommenders.

The paper's related-work section grounds social recommendation in two
pre-deep-learning models; both are provided as library baselines (they
pre-date the paper's Table II but anchor the historical comparison):

* **SoRec** (Ma et al., CIKM 2008) — co-factorizes the interaction matrix
  and the social matrix with a shared user factor;
* **TrustMF** (Yang et al., TPAMI 2016) — truster/trustee factor model:
  each user has a truster vector (as a consumer of influence) and a
  trustee vector (as a source), coupled through the trust edges.

Both are trained with the shared BPR objective plus their social
co-factorization terms, so they slot into the common harness.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph
from repro.models.base import Recommender
from repro.nn.layers import Embedding


class SoRec(Recommender):
    """Shared-user-factor co-factorization of ``Y`` and ``S``."""

    name = "sorec"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, social_weight: float = 0.5):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.social_weight = float(social_weight)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        # Social factor matrix Z: S ≈ sigmoid(U Z^T).
        self.social_factor = Embedding(graph.num_users, embed_dim, rng=rng)
        self._social = graph.edges("social")
        self._rng = np.random.default_rng(seed + 13)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        return self.user_embedding.all(), self.item_embedding.all()

    def bpr_loss(self, users, positives, negatives, l2: float = 1e-4) -> Tensor:
        """BPR plus the social co-factorization term on sampled ties."""
        loss = super().bpr_loss(users, positives, negatives, l2=l2)
        edges = self._social
        if self.social_weight <= 0 or len(edges) == 0:
            return loss
        sample = self._rng.integers(0, len(edges), size=min(len(users), len(edges)))
        src, dst = edges.src[sample], edges.dst[sample]
        rand = self._rng.integers(0, self.graph.num_users, size=len(sample))
        user_vecs = ops.gather_rows(self.user_embedding.all(), src)
        tie = ops.sum(ops.mul(user_vecs,
                              ops.gather_rows(self.social_factor.all(), dst)),
                      axis=1)
        non_tie = ops.sum(ops.mul(user_vecs,
                                  ops.gather_rows(self.social_factor.all(), rand)),
                          axis=1)
        social = ops.neg(ops.mean(ops.log_sigmoid(ops.sub(tie, non_tie))))
        return ops.add(loss, ops.mul(Tensor(np.array(self.social_weight)), social))


class TrustMF(Recommender):
    """Truster/trustee factorization coupled through trust edges."""

    name = "trustmf"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, trust_weight: float = 0.5):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.trust_weight = float(trust_weight)
        self.truster_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.trustee_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self._social = graph.edges("social")
        self._rng = np.random.default_rng(seed + 17)

    def propagate(self) -> Tuple[Tensor, Tensor]:
        # Prediction uses the truster (influence-receiving) side, blended
        # with the trustee side as the published model's joint variant does.
        users = ops.add(self.truster_embedding.all(),
                        ops.mul(self.trustee_embedding.all(),
                                Tensor(np.array(0.5))))
        return users, self.item_embedding.all()

    def bpr_loss(self, users, positives, negatives, l2: float = 1e-4) -> Tensor:
        """BPR plus truster->trustee proximity on sampled trust edges."""
        loss = super().bpr_loss(users, positives, negatives, l2=l2)
        edges = self._social
        if self.trust_weight <= 0 or len(edges) == 0:
            return loss
        sample = self._rng.integers(0, len(edges), size=min(len(users), len(edges)))
        src, dst = edges.src[sample], edges.dst[sample]
        rand = self._rng.integers(0, self.graph.num_users, size=len(sample))
        trusters = ops.gather_rows(self.truster_embedding.all(), src)
        tie = ops.sum(ops.mul(trusters,
                              ops.gather_rows(self.trustee_embedding.all(), dst)),
                      axis=1)
        non_tie = ops.sum(ops.mul(trusters,
                                  ops.gather_rows(self.trustee_embedding.all(),
                                                  rand)),
                          axis=1)
        trust = ops.neg(ops.mean(ops.log_sigmoid(ops.sub(tie, non_tie))))
        return ops.add(loss, ops.mul(Tensor(np.array(self.trust_weight)), trust))
