"""HGT — Heterogeneous Graph Transformer (Hu et al., WWW 2020).

The published architecture keeps distinct parameters per node type and
per edge type: type-specific Key/Query/Value projections, edge-type
attention and message matrices, and target-type output projections with
residual connections.  Attention is scaled dot product per edge,
normalized over each target's incoming edges — the mechanism the paper
credits for HGT's strong accuracy and blames for its high cost in
Table IV (per-edge projected attention vs DGNN's per-node gates).

Node types: user / item / relation-node.  Edge types: social, user→item,
item→user, item→relation, relation→item.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.graph.hetero import CollaborativeHeteroGraph, EdgeSet
from repro.models.base import Recommender
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, ModuleDict, ModuleList, Parameter

_NODE_TYPES = ("user", "item", "relation")
# (edge name, source type, target type, edge list kind)
_EDGE_SPECS = (
    ("social", "user", "user", "social"),
    ("iu", "user", "item", "iu"),
    ("ui", "item", "user", "ui"),
    ("ri", "item", "relation", "ri"),
    ("ir", "relation", "item", "ir"),
)


class _HgtLayer(Module):
    """One HGT layer: typed K/Q/V, edge-type attention, typed output."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.key = ModuleDict()
        self.query = ModuleDict()
        self.value = ModuleDict()
        self.out = ModuleDict()
        for node_type in _NODE_TYPES:
            self.key[node_type] = Linear(dim, dim, bias=False, rng=rng)
            self.query[node_type] = Linear(dim, dim, bias=False, rng=rng)
            self.value[node_type] = Linear(dim, dim, bias=False, rng=rng)
            self.out[node_type] = Linear(dim, dim, rng=rng)
        # Per-edge-type attention / message matrices stay plain
        # Parameters — ModuleDict holds modules, not weights.
        for edge_name, _, _, _ in _EDGE_SPECS:
            setattr(self, f"att_{edge_name}",
                    Parameter(init.xavier_uniform((dim, dim), rng)))
            setattr(self, f"msg_{edge_name}",
                    Parameter(init.xavier_uniform((dim, dim), rng)))

    def forward(self, features: Dict[str, Tensor],
                edge_lists: Dict[str, EdgeSet]) -> Dict[str, Tensor]:
        keys = {t: self.key[t](features[t]) for t in _NODE_TYPES}
        queries = {t: self.query[t](features[t]) for t in _NODE_TYPES}
        values = {t: self.value[t](features[t]) for t in _NODE_TYPES}

        aggregated: Dict[str, Tensor] = {}
        for edge_name, src_type, dst_type, _ in _EDGE_SPECS:
            edges = edge_lists[edge_name]
            if len(edges) == 0:
                continue
            num_targets = features[dst_type].shape[0]
            key_edge = ops.gather_rows(keys[src_type], edges.src)
            query_edge = ops.gather_rows(queries[dst_type], edges.dst)
            att_matrix = getattr(self, f"att_{edge_name}")
            scores = ops.mul(ops.sum(ops.mul(ops.matmul(key_edge, att_matrix),
                                             query_edge), axis=1),
                             Tensor(np.array(1.0 / np.sqrt(self.dim))))
            alpha = ops.segment_softmax(scores, edges.dst, num_targets)
            message = ops.matmul(ops.gather_rows(values[src_type], edges.src),
                                 getattr(self, f"msg_{edge_name}"))
            weighted = ops.mul(message, ops.reshape(alpha, (len(edges), 1)))
            summed = ops.segment_sum(weighted, edges.dst, num_targets)
            if dst_type in aggregated:
                aggregated[dst_type] = ops.add(aggregated[dst_type], summed)
            else:
                aggregated[dst_type] = summed

        outputs: Dict[str, Tensor] = {}
        for node_type in _NODE_TYPES:
            if node_type in aggregated:
                projected = self.out[node_type](
                    ops.leaky_relu(aggregated[node_type], 0.2))
                outputs[node_type] = ops.add(projected, features[node_type])
            else:
                outputs[node_type] = features[node_type]
        return outputs


class HGT(Recommender):
    """Heterogeneous Graph Transformer on the collaborative graph."""

    name = "hgt"

    def __init__(self, graph: CollaborativeHeteroGraph, embed_dim: int = 16,
                 seed: int = 0, num_layers: int = 2):
        super().__init__(graph, embed_dim, seed)
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.user_embedding = Embedding(graph.num_users, embed_dim, rng=rng)
        self.item_embedding = Embedding(graph.num_items, embed_dim, rng=rng)
        self.relation_embedding = Embedding(graph.num_relations, embed_dim, rng=rng)
        self.layers = ModuleList([_HgtLayer(embed_dim, rng)
                                  for _ in range(self.num_layers)])
        self._edge_lists = {name: graph.edges(kind)
                            for name, _, _, kind in _EDGE_SPECS}

    def propagate(self) -> Tuple[Tensor, Tensor]:
        features = {
            "user": self.user_embedding.all(),
            "item": self.item_embedding.all(),
            "relation": self.relation_embedding.all(),
        }
        user_layers = [features["user"]]
        item_layers = [features["item"]]
        for layer in self.layers:
            features = layer(features, self._edge_lists)
            user_layers.append(features["user"])
            item_layers.append(features["item"])
        return ops.cat(user_layers, axis=1), ops.cat(item_layers, axis=1)
