#!/usr/bin/env python3
"""Scenario: plugging your own item knowledge into the recommender.

Shows the library as a downstream user would adopt it: build an
:class:`InteractionDataset` from raw edge lists (here, a mocked catalogue
with product categories), persist it to disk, reload it, and quantify how
much the item-relation graph ``T`` contributes by training DGNN with and
without it (the paper's "-T" ablation, Fig. 5).

Run:  python examples/item_knowledge.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import (
    InteractionDataset,
    build_eval_candidates,
    leave_one_out,
    load_dataset,
    save_dataset,
)
from repro.eval import evaluate_model
from repro.graph import CollaborativeHeteroGraph
from repro.models import DGNN
from repro.train import TrainConfig, Trainer


def build_catalogue(seed: int = 0) -> InteractionDataset:
    """Assemble a dataset from raw arrays, the way a user of the library
    would wrap their own logs: purchases, a trust network, and a
    category taxonomy."""
    rng = np.random.default_rng(seed)
    num_users, num_items, num_categories = 120, 400, 8
    categories = rng.integers(0, num_categories, size=num_items)

    # Users buy mostly within 2 favourite categories.
    interactions = []
    favourite = rng.integers(0, num_categories, size=(num_users, 2))
    for user in range(num_users):
        liked = np.flatnonzero(np.isin(categories, favourite[user]))
        count = rng.integers(4, 10)
        for item in rng.choice(liked, size=min(count, len(liked)), replace=False):
            interactions.append((user, int(item)))
        # plus one or two random purchases
        for item in rng.choice(num_items, size=2, replace=False):
            interactions.append((user, int(item)))

    # Trust network: users trusting others with a shared favourite category.
    social = []
    for user in range(num_users):
        same = np.flatnonzero(favourite[:, 0] == favourite[user, 0])
        for partner in rng.choice(same, size=min(4, len(same)), replace=False):
            if partner != user:
                social.append((user, int(partner)))

    item_relations = np.stack([np.arange(num_items), categories], axis=1)
    return InteractionDataset(
        num_users=num_users, num_items=num_items, num_relations=num_categories,
        interactions=np.asarray(interactions), social_edges=np.asarray(social),
        item_relations=item_relations, name="catalogue-demo")


def train_and_score(dataset, use_item_relations: bool) -> float:
    split = leave_one_out(dataset, seed=0)
    candidates = build_eval_candidates(split, num_negatives=100, seed=0)
    graph = CollaborativeHeteroGraph(dataset, split.train_pairs,
                                     use_item_relations=use_item_relations)
    model = DGNN(graph, embed_dim=16, seed=0)
    config = TrainConfig(epochs=35, batch_size=256, eval_every=2, patience=6)
    Trainer(model, split, config, candidates).fit()
    return evaluate_model(model, candidates)["hr@10"]


def main() -> None:
    dataset = build_catalogue()
    print(f"assembled: {dataset}")

    # Persist and reload — both .npz and text formats round-trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "catalogue.npz"
        save_dataset(dataset, path)
        dataset = load_dataset(path)
        print(f"reloaded from {path.name}: {dataset}")

    with_t = train_and_score(dataset, use_item_relations=True)
    without_t = train_and_score(dataset, use_item_relations=False)
    print(f"\nHR@10 with item relations:    {with_t:.4f}")
    print(f"HR@10 without item relations: {without_t:.4f}  (the '-T' ablation)")
    print("The category graph lets DGNN share signal across items of the "
          "same kind; dropping it costs accuracy exactly as Fig. 5 reports.")


if __name__ == "__main__":
    main()
