#!/usr/bin/env python3
"""Scenario: inspecting what DGNN's memory units learned (Fig. 10 style).

Trains DGNN, extracts the per-user memory gate vectors of the social bank
and the user self bank, and checks the paper's Fig. 10 claim
quantitatively: users joined by social ties hold more similar social-bank
attention than random user pairs.  Also prints RGB colourings, which is
what the paper plots.

Run:  python examples/memory_inspection.py
"""

import numpy as np

from repro.experiments import (
    ExperimentContext,
    default_train_config,
    run_memory_attention_study,
)


def main() -> None:
    context = ExperimentContext.build("tiny", seed=3)
    print(f"dataset: {context.dataset}\n")
    config = default_train_config(epochs=30, batch_size=256, eval_every=2,
                                  patience=6)
    results = run_memory_attention_study(context, train_config=config,
                                         embed_dim=16, seed=0)
    print(results.render())

    colors = results.colors["social-bank"]
    print("\nRGB colouring of the first 8 users' social-bank attention "
          "(what Fig. 10 plots):")
    for user in range(8):
        r, g, b = colors[user]
        print(f"  user {user}: ({r:.2f}, {g:.2f}, {b:.2f})")

    gap = results.matched_gap("social-bank", "social-ties")
    print(f"\nsocial-bank coherence gap on social ties: {gap:+.4f} "
          f"({'consistent with' if gap > 0 else 'contradicts'} Fig. 10)")


if __name__ == "__main__":
    main()
