#!/usr/bin/env python3
"""Quickstart: train DGNN on a synthetic social-recommendation benchmark.

Covers the core workflow end to end:

1. generate a dataset (users, items, social ties, item relations),
2. hold out one test item per user,
3. build the collaborative heterogeneous graph,
4. train DGNN with BPR,
5. evaluate with the paper's 1-positive + 100-negative protocol,
6. produce recommendations for a user.

Run:  python examples/quickstart.py
"""

from repro.data import build_eval_candidates, leave_one_out, tiny
from repro.eval import evaluate_model
from repro.graph import CollaborativeHeteroGraph
from repro.models import DGNN
from repro.train import TrainConfig, Trainer


def main() -> None:
    # 1. A small synthetic dataset (see repro.data.synthetic for knobs).
    dataset = tiny(seed=42)
    print(f"dataset: {dataset}")

    # 2. Leave-one-out split + fixed evaluation candidates.
    split = leave_one_out(dataset, seed=42)
    candidates = build_eval_candidates(split, num_negatives=100, seed=42)
    print(f"split:   {split}")

    # 3. The collaborative heterogeneous graph (Eq. 1 of the paper):
    #    interactions Y + social ties S + item relations T.
    graph = CollaborativeHeteroGraph(dataset, split.train_pairs)
    print(f"graph:   {graph}")

    # 4. DGNN with the paper's defaults (d=16, L=2, |M|=8).
    model = DGNN(graph, embed_dim=16, num_layers=2, num_memory_units=8, seed=0)
    print(f"model:   dgnn with {model.num_parameters()} parameters")

    config = TrainConfig(epochs=30, batch_size=256, learning_rate=0.01,
                         l2=1e-4, eval_every=2, patience=5, verbose=True)
    history = Trainer(model, split, config, candidates).fit()

    # 5. Final metrics (best checkpoint restored by early stopping).
    metrics = evaluate_model(model, candidates)
    print("\nfinal metrics:")
    for name, value in sorted(metrics.items()):
        print(f"  {name:10s} {value:.4f}")
    print(f"best epoch: {history.best_epoch + 1} of {history.epochs_run}")

    # 6. Top-5 recommendations for user 0 (training items excluded).
    top = model.recommend(user=0, top_n=5)
    print(f"\ntop-5 items for user 0: {[int(item) for item in top]}")


if __name__ == "__main__":
    main()
