#!/usr/bin/env python3
"""Scenario: the paper's future-work directions, working today.

The conclusion of the DGNN paper names two extensions: cold-start
recommendation and pre-trained side-knowledge learning.  Both are
implemented in this library; this example exercises them together.

1. **Pre-training**: learn user/item embeddings from the social and
   item-relation structure alone (no interactions), warm-start DGNN with
   them, and compare fine-tuning against a cold start.
2. **Cold-start inference**: embed a brand-new user from nothing but
   their friend list using the trained propagation operators, and check
   the zero-shot recommendations against the friends' actual tastes.

Run:  python examples/cold_start_and_pretraining.py
"""

import numpy as np

from repro.data import build_eval_candidates, leave_one_out, tiny
from repro.eval import evaluate_model
from repro.graph import CollaborativeHeteroGraph
from repro.models import DGNN
from repro.models.coldstart import recommend_cold_user
from repro.train import (
    PretrainConfig,
    TrainConfig,
    Trainer,
    apply_pretrained,
    pretrain_embeddings,
)


def main() -> None:
    dataset = tiny(seed=9)
    split = leave_one_out(dataset, seed=9)
    candidates = build_eval_candidates(split, num_negatives=100, seed=9)
    graph = CollaborativeHeteroGraph(dataset, split.train_pairs)
    config = TrainConfig(epochs=20, batch_size=256, eval_every=2, patience=None)

    # --- 1. structural pre-training --------------------------------------
    user_table, item_table = pretrain_embeddings(
        graph, embed_dim=16, config=PretrainConfig(epochs=30, seed=0))

    scratch = DGNN(graph, embed_dim=16, seed=0)
    Trainer(scratch, split, config, candidates).fit()
    scratch_metrics = evaluate_model(scratch, candidates)

    warm = DGNN(graph, embed_dim=16, seed=0)
    apply_pretrained(warm, user_table, item_table)
    Trainer(warm, split, config, candidates).fit()
    warm_metrics = evaluate_model(warm, candidates)

    print("fine-tuning comparison (HR@10):")
    print(f"  from scratch:   {scratch_metrics['hr@10']:.4f}")
    print(f"  pre-trained:    {warm_metrics['hr@10']:.4f}")

    # --- 2. cold-start inference ------------------------------------------
    # Pretend the most social user is brand new: forget their history and
    # embed them from their friend list alone.
    social = graph.social
    user = int(np.argmax(social.sum(axis=1)))
    friends = social[user].indices
    recommendations = recommend_cold_user(warm, friends, top_n=10)

    friend_items = set()
    for friend in friends:
        friend_items.update(graph.interaction[friend].indices)
    overlap = len(set(int(i) for i in recommendations) & friend_items)

    print(f"\ncold-start user cloned from user {user} "
          f"({len(friends)} friends):")
    print(f"  zero-shot top-10: {[int(i) for i in recommendations]}")
    print(f"  {overlap}/10 recommendations overlap the friends' history — "
          "the social prior at work.")


if __name__ == "__main__":
    main()
