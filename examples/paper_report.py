#!/usr/bin/env python3
"""Scenario: regenerate a miniature paper report end to end.

Runs a scaled-down version of every experiment (Tables II-IV, Figs. 4-10)
on one dataset and assembles a browsable markdown + SVG report under
``./report/`` — the same machinery the benchmark suite uses at full
scale.

Run:  python examples/paper_report.py [output_dir]
"""

import sys

from repro.data import render_statistics_table
from repro.experiments import (
    ExperimentContext,
    default_train_config,
    run_convergence_comparison,
    run_efficiency_comparison,
    run_embedding_visualization,
    run_hyperparameter_sweep,
    run_memory_attention_study,
    run_module_ablation,
    run_overall_comparison,
    run_relation_ablation,
    run_sparsity_experiment,
)
from repro.experiments.report import ReportBuilder


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "report"
    context = ExperimentContext.build("tiny", seed=1)
    config = default_train_config(epochs=15, batch_size=256, eval_every=3,
                                  patience=None)
    builder = ReportBuilder(output, title="DGNN mini-report (tiny dataset)")

    print("Table I ...")
    builder.add_text("Table I — dataset statistics",
                     render_statistics_table([context.dataset]))

    print("Tables II/III (4 models) ...")
    overall = run_overall_comparison(
        datasets=("tiny",), models=("most-popular", "bpr-mf", "mhcn", "dgnn"),
        train_config=config, embed_dim=16)
    builder.add_overall(overall)

    print("Table IV ...")
    builder.add_efficiency(run_efficiency_comparison(context, epochs=2))

    print("Fig. 4 ...")
    builder.add_ablation(run_module_ablation(context, train_config=config),
                         "fig4")
    print("Fig. 5 ...")
    builder.add_ablation(run_relation_ablation(context, train_config=config),
                         "fig5")
    print("Fig. 6 ...")
    builder.add_sparsity(run_sparsity_experiment(
        context, models=("bpr-mf", "dgnn"), train_config=config))
    print("Fig. 7 (one panel) ...")
    builder.add_sweep(run_hyperparameter_sweep(
        context, "num_memory_units", values=(2, 4, 8), train_config=config),
        "fig7")
    print("Fig. 8 ...")
    builder.add_convergence(run_convergence_comparison(
        context, models=("dgcf", "dgnn"), epochs=10))
    print("Fig. 9 ...")
    builder.add_embedding_viz(run_embedding_visualization(
        context, models=("kgat", "dgnn"), num_users=6, items_per_user=5,
        train_config=config, tsne_iterations=150))
    print("Fig. 10 ...")
    builder.add_memory_viz(run_memory_attention_study(
        context, train_config=config))

    index = builder.write()
    print(f"\nreport written to {index}")


if __name__ == "__main__":
    main()
