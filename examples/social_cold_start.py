#!/usr/bin/env python3
"""Scenario: recommending for near-cold-start users with social context.

The paper's motivating claim (RQ4 / Fig. 6): when users have few
interactions, heterogeneous side information — who they trust, and how
items relate — substitutes for the missing behavioural signal.  This
example builds a benchmark with a pronounced sparse-user population,
trains plain matrix factorization and DGNN under identical settings, and
compares them per interaction-sparsity quartile.

Run:  python examples/social_cold_start.py
"""

import numpy as np

from repro.data import SyntheticConfig, build_eval_candidates, generate_dataset, leave_one_out
from repro.eval import evaluate_by_group
from repro.graph import CollaborativeHeteroGraph
from repro.models import BprMF, DGNN
from repro.train import TrainConfig, Trainer


def main() -> None:
    # Heavy-tailed interactions (many users with barely 3) but a dense,
    # homophilous trust network.
    config = SyntheticConfig(
        num_users=150, num_items=500, num_relations=8, num_communities=6,
        mean_interactions=5.0, min_interactions=3, mean_social_degree=8.0,
        homophily=0.9, seed=7, name="cold-start-demo")
    dataset = generate_dataset(config)
    split = leave_one_out(dataset, seed=7)
    candidates = build_eval_candidates(split, num_negatives=100, seed=7)
    graph = CollaborativeHeteroGraph(dataset, split.train_pairs)
    print(f"dataset: {dataset}")

    train_config = TrainConfig(epochs=40, batch_size=256, eval_every=2,
                               patience=6)
    models = {
        "bpr-mf": BprMF(graph, embed_dim=16, seed=0),
        "dgnn": DGNN(graph, embed_dim=16, seed=0),
    }
    interaction_counts = dataset.user_degrees(split.train_pairs)[candidates.users]

    print(f"\n{'model':<8} " + " ".join(f"{f'Q{q + 1}':>8}" for q in range(4))
          + "   (HR@10 per interaction-sparsity quartile, sparsest first)")
    for name, model in models.items():
        Trainer(model, split, train_config, candidates).fit()
        groups = evaluate_by_group(model, candidates,
                                   interaction_counts.astype(float),
                                   num_groups=4, ks=(10,))
        row = " ".join(f"{g['hr@10']:>8.4f}" for g in groups)
        print(f"{name:<8} {row}")

    print("\nThe sparsest quartile (Q1) is where the social and item-relation "
          "context matters most — DGNN's margin should be widest there.")


if __name__ == "__main__":
    main()
