#!/usr/bin/env python3
"""Scenario: benchmark several recommenders on one dataset (mini Table II).

Uses the experiment harness the paper-scale benches are built on, at a
size that finishes in about a minute: every model sees the identical
split and the identical negative samples, exactly like the paper's
protocol.

Run:  python examples/compare_models.py [model ...]
"""

import sys

from repro.experiments import ExperimentContext, default_train_config, run_model

DEFAULT_MODELS = ("most-popular", "bpr-mf", "ngcf", "diffnet", "mhcn", "dgnn")


def main() -> None:
    models = sys.argv[1:] or list(DEFAULT_MODELS)
    context = ExperimentContext.build("tiny", seed=1)
    print(f"dataset: {context.dataset}\n")
    config = default_train_config(epochs=40, batch_size=256, eval_every=2,
                                  patience=6)

    print(f"{'model':<14}{'HR@5':>8}{'HR@10':>8}{'NDCG@10':>9}{'params':>9}")
    print("-" * 48)
    for name in models:
        run = run_model(name, context, config)
        print(f"{name:<14}{run.metrics['hr@5']:>8.4f}"
              f"{run.metrics['hr@10']:>8.4f}{run.metrics['ndcg@10']:>9.4f}"
              f"{run.num_parameters:>9d}")


if __name__ == "__main__":
    main()
